//! The unified metrics registry.
//!
//! Every layer used to hand-plumb its counters field by field into the
//! bench harness; the registry replaces that with one vocabulary: a named
//! entry is a counter, a gauge or a log2-bucket histogram, and carries the
//! two facts the harness needs to build its gateable metric list — whether
//! the value is deterministic (virtual-clock or structural) and which
//! direction is better. `RunReport` and `LoadReport` build their registry
//! in one place and the harness renders *every* entry from the snapshot,
//! so a new counter becomes a bench metric by existing.

use std::collections::BTreeMap;

/// What kind of value a registry entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically accumulated count.
    Counter,
    /// A sampled level or ratio.
    Gauge,
    /// A log2-bucket distribution summary (entry value = observation count).
    Histogram,
}

/// Which direction of drift the perf gate should flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricDirection {
    /// Growth beyond tolerance is a regression.
    LowerIsBetter,
    /// Shrinkage beyond tolerance is a regression.
    HigherIsBetter,
    /// Context only; never gated.
    Informational,
}

/// One named value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Stable metric name — these are the names committed in bench
    /// baselines, so they change only deliberately.
    pub name: &'static str,
    /// The value (counts are exact in f64 far beyond any run length).
    pub value: f64,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// True when the value is a pure function of the config (virtual clock
    /// or structural invariant) — the precondition for gating it in CI.
    pub deterministic: bool,
    /// Which way regressions point.
    pub direction: MetricDirection,
}

/// An insertion-ordered registry of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<MetricEntry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a counter.
    pub fn counter(
        &mut self,
        name: &'static str,
        value: u64,
        deterministic: bool,
        direction: MetricDirection,
    ) {
        self.push(
            name,
            value as f64,
            MetricKind::Counter,
            deterministic,
            direction,
        );
    }

    /// Registers a gauge.
    pub fn gauge(
        &mut self,
        name: &'static str,
        value: f64,
        deterministic: bool,
        direction: MetricDirection,
    ) {
        self.push(name, value, MetricKind::Gauge, deterministic, direction);
    }

    /// Registers a histogram's observation count as an entry (the buckets
    /// themselves live in the [`Log2Histogram`], which renders through the
    /// summary exporter).
    pub fn histogram(&mut self, name: &'static str, histogram: &Log2Histogram) {
        self.push(
            name,
            histogram.count() as f64,
            MetricKind::Histogram,
            false,
            MetricDirection::Informational,
        );
    }

    fn push(
        &mut self,
        name: &'static str,
        value: f64,
        kind: MetricKind,
        deterministic: bool,
        direction: MetricDirection,
    ) {
        debug_assert!(
            !self.entries.iter().any(|e| e.name == name),
            "duplicate metric name {name:?}"
        );
        self.entries.push(MetricEntry {
            name,
            value,
            kind,
            deterministic,
            direction,
        });
    }

    /// The entries, in registration order — the one source of truth the
    /// bench harness renders metric samples from.
    pub fn snapshot(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A power-of-two-bucket histogram of nanosecond (or any integer-scaled)
/// observations: bucket `i` counts values in `[2^(i-1), 2^i)`, bucket 0
/// counts zeros. Fixed 64 slots, no allocation after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Index of the bucket `value` falls in (the top two magnitudes share
    /// bucket 63 so the fixed array covers the full u64 range).
    fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(63)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket_upper_bound, count)` pairs in
    /// ascending order. Bucket 0's bound is 0; bucket `i`'s is `2^i - 1`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let bound = if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
                (bound, *c)
            })
            .collect()
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the
    /// observations fall in buckets up to `v`'s — a log2-granular quantile
    /// bound.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= need.max(1) {
                return if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
            }
        }
        self.max
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

/// Renders the registry's entries for humans: name, kind, value, flags —
/// one line each, in registration order.
pub fn render_registry(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for e in registry.snapshot() {
        let kind = match e.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let det = if e.deterministic { "det" } else { "wall" };
        let dir = match e.direction {
            MetricDirection::LowerIsBetter => "lower-is-better",
            MetricDirection::HigherIsBetter => "higher-is-better",
            MetricDirection::Informational => "info",
        };
        out.push_str(&format!(
            "{:<32} {kind:<9} {:>18.6} [{det}, {dir}]\n",
            e.name, e.value
        ));
    }
    out
}

/// Groups entries by kind, preserving order — used by the text summary.
pub fn entries_by_kind(registry: &MetricsRegistry) -> BTreeMap<&'static str, Vec<&MetricEntry>> {
    let mut grouped: BTreeMap<&'static str, Vec<&MetricEntry>> = BTreeMap::new();
    for e in registry.snapshot() {
        let key = match e.kind {
            MetricKind::Counter => "counters",
            MetricKind::Gauge => "gauges",
            MetricKind::Histogram => "histograms",
        };
        grouped.entry(key).or_default().push(e);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_snapshot_preserves_registration_order_and_flags() {
        let mut reg = MetricsRegistry::new();
        reg.counter("data_messages", 42, false, MetricDirection::LowerIsBetter);
        reg.gauge(
            "cache_hit_rate",
            0.75,
            true,
            MetricDirection::HigherIsBetter,
        );
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "data_messages");
        assert_eq!(snap[0].kind, MetricKind::Counter);
        assert!(!snap[0].deterministic);
        assert_eq!(snap[1].name, "cache_hit_rate");
        assert!(snap[1].deterministic);
        assert_eq!(reg.get("cache_hit_rate").unwrap().value, 0.75);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_are_rejected_in_debug_builds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("steals", 1, true, MetricDirection::Informational);
        reg.counter("steals", 2, true, MetricDirection::Informational);
    }

    #[test]
    fn log2_buckets_land_where_expected() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket 0; 1 -> (0,1]; 2,3 -> (1,3]; 4 -> (3,7]; 1000 -> (511,1023].
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (3, 2));
        assert_eq!(buckets[3], (7, 1));
        assert_eq!(buckets[4], (1023, 1));
    }

    #[test]
    fn quantile_bounds_are_monotone_and_cover_the_range() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile_bound(0.5);
        let p99 = h.quantile_bound(0.99);
        assert!(p50 <= p99);
        assert!(
            (511..=1023).contains(&p50),
            "median of 1..=1000 rounds up to {p50}"
        );
        assert_eq!(h.quantile_bound(1.0), 1023);
        assert_eq!(Log2Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn rendering_is_deterministic_text() {
        let mut reg = MetricsRegistry::new();
        reg.counter("steals", 7, false, MetricDirection::Informational);
        let text = render_registry(&reg);
        assert!(text.contains("steals"));
        assert!(text.contains("counter"));
        assert!(text.contains("[wall, info]"));
        assert_eq!(text, render_registry(&reg));
    }
}
