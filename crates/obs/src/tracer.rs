//! The tracer: per-worker recorders feeding one collected snapshot.
//!
//! Ownership is the whole design. A [`TrackRecorder`] *owns* its
//! [`EventRing`] outright, so the emit hot path is: one relaxed load of the
//! shared enabled flag, one branch, one write into worker-local memory — no
//! lock, no allocation, no sharing. When a recorder is dropped (worker
//! exit) its ring moves into the tracer's collected list behind a mutex
//! that is touched once per worker *lifetime*, not once per event.
//!
//! Real runtimes stamp events with the tracer's monotonic clock
//! ([`TrackRecorder::now_ns`]); virtual-clock runtimes (the simulated
//! runtime, the service's virtual replay) pass explicit timestamps through
//! the `*_at` methods, which is what makes their exported traces
//! bit-identical across runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};
use crate::ring::EventRing;

/// Default per-track ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Tracing knobs carried by `RunConfig` / `ServiceConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. Off means every emit is a relaxed load and a branch.
    pub enabled: bool,
    /// Per-track ring capacity, in events (newest win on overflow).
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled — the zero-cost default.
    pub const fn off() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Tracing enabled at the default ring capacity.
    pub const fn on() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// The same config with a different per-track ring capacity.
    pub const fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Which layer of the system a track belongs to. Becomes the Chrome trace
/// process (`pid`) so Perfetto groups worker, host and tenant timelines
/// separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The threaded runtime's OS workers.
    Runtime,
    /// Simulated netsim hosts on the virtual clock.
    Netsim,
    /// The multi-tenant service (tenants, service workers).
    Service,
}

impl Layer {
    /// Every layer, in export order.
    pub const ALL: [Layer; 3] = [Layer::Runtime, Layer::Netsim, Layer::Service];

    /// The Chrome trace process id this layer exports under.
    pub fn pid(self) -> u64 {
        match self {
            Layer::Runtime => 1,
            Layer::Netsim => 2,
            Layer::Service => 3,
        }
    }

    /// The Chrome trace category string, also used by the schema checker to
    /// assert which layers a trace covers.
    pub fn cat(self) -> &'static str {
        match self {
            Layer::Runtime => "runtime",
            Layer::Netsim => "netsim",
            Layer::Service => "service",
        }
    }
}

/// One finished track: a named timeline of events within a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// The layer (Chrome process) this timeline belongs to.
    pub layer: Layer,
    /// Human-readable track name (`worker-3`, `host-17`, `tenant-0`).
    pub name: String,
    /// Chrome thread id within the layer; also the track sort key.
    pub tid: u64,
    /// The recorded events.
    pub ring: EventRing,
}

/// Everything recorders share.
struct SharedState {
    enabled: AtomicBool,
    ring_capacity: usize,
    origin: Instant,
    collected: Mutex<Vec<Track>>,
}

/// The tracing front end: hands out recorders, collects their rings.
/// Cloning is cheap (an `Arc` bump) and all clones feed one snapshot.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<SharedState>,
}

impl Tracer {
    /// A tracer configured by `config`.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            shared: Arc::new(SharedState {
                enabled: AtomicBool::new(config.enabled),
                ring_capacity: if config.enabled {
                    config.ring_capacity
                } else {
                    0
                },
                origin: Instant::now(),
                collected: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A disabled tracer: recorders exist, emits are a load and a branch,
    /// nothing is retained.
    pub fn disabled() -> Self {
        Tracer::new(TraceConfig::off())
    }

    /// Whether emits currently record anything.
    pub fn is_enabled(&self) -> bool {
        // ord: stat-style flag — readers only need to eventually observe
        // the setup-time value; no data is published through this load.
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Creates an owned recorder for one track. `tid` orders tracks within
    /// the layer in the export.
    pub fn recorder(&self, layer: Layer, name: impl Into<String>, tid: u64) -> TrackRecorder {
        TrackRecorder {
            shared: Arc::clone(&self.shared),
            layer,
            name: name.into(),
            tid,
            ring: EventRing::new(self.shared.ring_capacity),
        }
    }

    /// Nanoseconds since the tracer was created (monotonic clock).
    pub fn now_ns(&self) -> u64 {
        self.shared.origin.elapsed().as_nanos() as u64
    }

    /// The collected tracks so far, sorted by (layer, tid, name) — every
    /// recorder dropped or finished up to this point contributes. Tracks
    /// that never recorded an event are omitted.
    pub fn snapshot(&self) -> TraceSnapshot {
        let collected = self
            .shared
            .collected
            .lock()
            .expect("tracer collection mutex poisoned");
        let mut tracks: Vec<Track> = collected
            .iter()
            .filter(|t| t.ring.total_pushed() > 0)
            .cloned()
            .collect();
        drop(collected);
        tracks.sort_by(|a, b| (a.layer, a.tid, &a.name).cmp(&(b.layer, b.tid, &b.name)));
        TraceSnapshot { tracks }
    }
}

/// An owned, single-writer event recorder for one track.
///
/// Not `Sync` by design: a recorder belongs to exactly one worker, which is
/// what guarantees records are never torn or interleaved. Control-plane
/// code that genuinely shares a track (the service's tenant timelines)
/// wraps a recorder in the mutex it already holds.
pub struct TrackRecorder {
    shared: Arc<SharedState>,
    layer: Layer,
    name: String,
    tid: u64,
    ring: EventRing,
}

impl TrackRecorder {
    /// Whether emits currently record anything — one relaxed load. Callers
    /// use this to skip argument computation entirely on the off path.
    #[inline]
    pub fn enabled(&self) -> bool {
        // ord: stat-style flag — see Tracer::is_enabled.
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the owning tracer was created (monotonic clock).
    /// Returns 0 when disabled so the off path never reads the clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.shared.origin.elapsed().as_nanos() as u64
    }

    #[inline]
    fn emit(&mut self, kind: EventKind, name: &'static str, time_ns: u64, extra: u64, arg: u64) {
        if !self.enabled() {
            return;
        }
        self.ring.push(Event::new(kind, name, time_ns, extra, arg));
    }

    /// Opens a span now.
    #[inline]
    pub fn span_begin(&mut self, name: &'static str, arg: u64) {
        let t = self.now_ns();
        self.emit(EventKind::Begin, name, t, 0, arg);
    }

    /// Opens a span at an explicit (virtual) timestamp.
    #[inline]
    pub fn span_begin_at(&mut self, name: &'static str, time_ns: u64, arg: u64) {
        self.emit(EventKind::Begin, name, time_ns, 0, arg);
    }

    /// Closes the innermost span of `name` now.
    #[inline]
    pub fn span_end(&mut self, name: &'static str, arg: u64) {
        let t = self.now_ns();
        self.emit(EventKind::End, name, t, 0, arg);
    }

    /// Closes the innermost span of `name` at an explicit timestamp.
    #[inline]
    pub fn span_end_at(&mut self, name: &'static str, time_ns: u64, arg: u64) {
        self.emit(EventKind::End, name, time_ns, 0, arg);
    }

    /// Records a whole span in one push — the hot-path shape: capture
    /// `start = now_ns()` before the work, call this after.
    #[inline]
    pub fn span_complete(&mut self, name: &'static str, start_ns: u64, end_ns: u64, arg: u64) {
        self.emit(EventKind::Complete, name, start_ns, end_ns, arg);
    }

    /// Records a point-in-time marker now.
    #[inline]
    pub fn instant(&mut self, name: &'static str, arg: u64) {
        let t = self.now_ns();
        self.emit(EventKind::Instant, name, t, 0, arg);
    }

    /// Records a point-in-time marker at an explicit timestamp.
    #[inline]
    pub fn instant_at(&mut self, name: &'static str, time_ns: u64, arg: u64) {
        self.emit(EventKind::Instant, name, time_ns, 0, arg);
    }

    /// Samples a counter now.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        let t = self.now_ns();
        self.emit(EventKind::Counter, name, t, value, 0);
    }

    /// Samples a counter at an explicit timestamp.
    #[inline]
    pub fn counter_at(&mut self, name: &'static str, time_ns: u64, value: u64) {
        self.emit(EventKind::Counter, name, time_ns, value, 0);
    }

    /// Hands the ring back to the tracer explicitly (Drop does the same).
    pub fn finish(self) {}
}

impl Drop for TrackRecorder {
    fn drop(&mut self) {
        if self.ring.total_pushed() == 0 {
            return;
        }
        let track = Track {
            layer: self.layer,
            name: std::mem::take(&mut self.name),
            tid: self.tid,
            ring: std::mem::replace(&mut self.ring, EventRing::new(0)),
        };
        if let Ok(mut collected) = self.shared.collected.lock() {
            collected.push(track);
        }
    }
}

/// Every collected track of a finished (or quiescent) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Tracks sorted by (layer, tid, name).
    pub tracks: Vec<Track>,
}

impl TraceSnapshot {
    /// True when no track recorded anything.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Total events retained across all tracks.
    pub fn total_events(&self) -> u64 {
        self.tracks.iter().map(|t| t.ring.len() as u64).sum()
    }

    /// Total events overwritten (or discarded) across all tracks.
    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.ring.dropped()).sum()
    }

    /// The layers that contributed at least one track.
    pub fn layers(&self) -> Vec<Layer> {
        let mut layers: Vec<Layer> = self.tracks.iter().map(|t| t.layer).collect();
        layers.sort();
        layers.dedup();
        layers
    }

    /// Folds another snapshot in, re-sorting tracks into canonical order.
    /// Used by `trace_dump` to combine the three layers' runs in one file.
    pub fn merge(&mut self, other: TraceSnapshot) {
        self.tracks.extend(other.tracks);
        self.tracks
            .sort_by(|a, b| (a.layer, a.tid, &a.name).cmp(&(b.layer, b.tid, &b.name)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn a_disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut rec = tracer.recorder(Layer::Runtime, "worker-0", 0);
        assert!(!rec.enabled());
        rec.span_begin("iterate", 1);
        rec.instant("publish", 2);
        rec.counter("steals", 3);
        rec.span_end("iterate", 1);
        rec.finish();
        let snap = tracer.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.total_events(), 0);
    }

    #[test]
    fn recorders_collect_into_a_sorted_snapshot() {
        let tracer = Tracer::new(TraceConfig::on());
        let mut svc = tracer.recorder(Layer::Service, "tenant-0", 0);
        svc.instant_at("admit", 5, 0);
        svc.finish();
        let mut w1 = tracer.recorder(Layer::Runtime, "worker-1", 1);
        w1.span_complete("iterate", 10, 20, 7);
        w1.finish();
        let mut w0 = tracer.recorder(Layer::Runtime, "worker-0", 0);
        w0.span_complete("iterate", 0, 5, 3);
        w0.finish();

        let snap = tracer.snapshot();
        let names: Vec<&str> = snap.tracks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["worker-0", "worker-1", "tenant-0"]);
        assert_eq!(snap.layers(), vec![Layer::Runtime, Layer::Service]);
        assert_eq!(snap.total_events(), 3);
    }

    #[test]
    fn empty_recorders_leave_no_track_behind() {
        let tracer = Tracer::new(TraceConfig::on());
        tracer.recorder(Layer::Netsim, "host-0", 0).finish();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn merge_resorts_tracks_into_canonical_order() {
        let tracer_a = Tracer::new(TraceConfig::on());
        let mut t = tracer_a.recorder(Layer::Service, "tenant-1", 1);
        t.instant_at("admit", 1, 0);
        t.finish();
        let tracer_b = Tracer::new(TraceConfig::on());
        let mut w = tracer_b.recorder(Layer::Runtime, "worker-0", 0);
        w.instant_at("steal", 1, 0);
        w.finish();

        let mut snap = tracer_a.snapshot();
        snap.merge(tracer_b.snapshot());
        assert_eq!(snap.tracks[0].layer, Layer::Runtime);
        assert_eq!(snap.tracks[1].layer, Layer::Service);
    }

    #[test]
    fn monotonic_now_never_goes_backwards() {
        let tracer = Tracer::new(TraceConfig::on());
        let rec = tracer.recorder(Layer::Runtime, "worker-0", 0);
        let mut last = 0;
        for _ in 0..1000 {
            let t = rec.now_ns();
            assert!(t >= last);
            last = t;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Seeded multi-worker run: every worker's track holds exactly the
        /// records that worker emitted, in emission order, with per-track
        /// monotone timestamps — no torn or interleaved records, however
        /// the threads raced.
        #[test]
        fn concurrent_recorders_never_tear_or_interleave(
            workers in 2usize..6,
            events_per_worker in 1usize..200,
            capacity in 8usize..256,
        ) {
            let tracer = Tracer::new(TraceConfig::on().with_ring_capacity(capacity));
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let mut rec =
                        tracer.recorder(Layer::Runtime, format!("worker-{w}"), w as u64);
                    scope.spawn(move || {
                        for i in 0..events_per_worker {
                            // Encode (worker, seq) into the record so a torn
                            // or cross-thread write is detectable below.
                            rec.span_complete(
                                "iterate",
                                i as u64,
                                i as u64 + 1,
                                (w as u64) << 32 | i as u64,
                            );
                        }
                    });
                }
            });

            let snap = tracer.snapshot();
            prop_assert_eq!(snap.tracks.len(), workers);
            for track in &snap.tracks {
                let w = track.tid;
                let retained = track.ring.len() as u64;
                let dropped = track.ring.dropped();
                prop_assert_eq!(retained + dropped, events_per_worker as u64);
                let mut last_time = None;
                let first_seq =
                    (events_per_worker as u64).saturating_sub(capacity as u64).max(dropped);
                for (expect_seq, ev) in (first_seq..).zip(track.ring.iter_in_order()) {
                    // Untorn: both halves of the encoded arg agree with the
                    // owning track and the running sequence.
                    prop_assert_eq!(ev.arg >> 32, w);
                    prop_assert_eq!(ev.arg & 0xffff_ffff, expect_seq);
                    prop_assert_eq!(ev.time_ns, expect_seq);
                    if let Some(last) = last_time {
                        prop_assert!(ev.time_ns >= last, "timestamps regress within a track");
                    }
                    last_time = Some(ev.time_ns);
                }
            }
        }
    }
}
