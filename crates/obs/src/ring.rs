//! A bounded, newest-wins event ring.
//!
//! Each worker (or host, or tenant) owns one [`EventRing`]. A push into a
//! full ring overwrites the oldest record — tracing must never grow memory
//! without bound on a long run, and the *end* of a run is where the
//! interesting events live. Overwrites are counted exactly, so a drop count
//! of zero certifies the exported trace is complete.

use crate::event::Event;

/// Bounded ring buffer of [`Event`]s that keeps the newest records.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Total pushes ever, including overwritten ones.
    written: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events. Capacity zero is
    /// legal and drops everything (used by disabled tracers).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            cap: capacity,
            written: 0,
        }
    }

    /// Appends an event, overwriting the oldest record when full.
    pub fn push(&mut self, ev: Event) {
        if self.cap > 0 {
            if self.buf.len() < self.cap {
                self.buf.push(ev);
            } else {
                // written >= cap here, so this indexes the oldest slot.
                self.buf[(self.written % self.cap as u64) as usize] = ev;
            }
        }
        self.written += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was ever pushed *and retained*.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed, retained or not.
    pub fn total_pushed(&self) -> u64 {
        self.written
    }

    /// Exactly how many events were overwritten (or, at capacity zero,
    /// discarded outright).
    pub fn dropped(&self) -> u64 {
        self.written - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &Event> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            (self.written % self.cap.max(1) as u64) as usize
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event::new(EventKind::Instant, "tick", t, 0, 0)
    }

    #[test]
    fn an_unfilled_ring_keeps_everything_in_order() {
        let mut ring = EventRing::new(8);
        for t in 0..5 {
            ring.push(ev(t));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let times: Vec<u64> = ring.iter_in_order().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wrapping_keeps_the_newest_events_and_counts_drops_exactly() {
        let mut ring = EventRing::new(4);
        for t in 0..11 {
            ring.push(ev(t));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_pushed(), 11);
        assert_eq!(ring.dropped(), 7, "11 pushed, 4 retained, 7 overwritten");
        let times: Vec<u64> = ring.iter_in_order().map(|e| e.time_ns).collect();
        assert_eq!(
            times,
            vec![7, 8, 9, 10],
            "the newest four survive, oldest first"
        );
    }

    #[test]
    fn wrap_exactly_at_capacity_drops_nothing() {
        let mut ring = EventRing::new(3);
        for t in 0..3 {
            ring.push(ev(t));
        }
        assert_eq!(ring.dropped(), 0);
        ring.push(ev(3));
        assert_eq!(ring.dropped(), 1);
        let times: Vec<u64> = ring.iter_in_order().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn a_zero_capacity_ring_drops_everything_but_still_counts() {
        let mut ring = EventRing::new(0);
        for t in 0..5 {
            ring.push(ev(t));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 5);
        assert_eq!(ring.iter_in_order().count(), 0);
    }
}
