//! Chrome trace-event JSON: deterministic export and in-repo validation.
//!
//! [`to_chrome_json`] renders a [`TraceSnapshot`] in the Chrome trace-event
//! format — open the file in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`. Layers map to processes (`pid`), tracks to threads
//! (`tid`), so the UI shows one timeline per runtime worker, netsim host
//! and service tenant. The output is *deterministic*: tracks are sorted,
//! events keep ring order, and timestamps are formatted with integer
//! arithmetic only — a virtual-clock run exports bit-identical JSON every
//! time, which the golden-file test pins.
//!
//! [`validate_chrome_trace`] is the schema checker CI's `trace-smoke` job
//! runs over exported files: structural JSON checks (required fields per
//! phase, non-negative timestamps, balanced B/E nesting per track) with no
//! dependency beyond the vendored `serde_json` shim.

use std::collections::{BTreeMap, BTreeSet};

use serde::Value;

use crate::event::EventKind;
use crate::tracer::{Layer, TraceSnapshot};

/// Writes `time_ns` as a Chrome `ts`/`dur` value (microseconds) using only
/// integer arithmetic, so the text never depends on float formatting.
fn push_us(out: &mut String, time_ns: u64) {
    out.push_str(&format!("{}.{:03}", time_ns / 1000, time_ns % 1000));
}

/// Minimal JSON string escape for names (all names in this workspace are
/// plain identifiers, but the exporter must not emit invalid JSON even if
/// one ever is not).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as Chrome trace-event JSON (object form).
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut line = |out: &mut String, text: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&text);
    };

    // Process metadata: one per layer present, in layer order.
    let layers: Vec<Layer> = snapshot.layers();
    for layer in &layers {
        line(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                layer.pid(),
                layer.cat()
            ),
        );
    }

    for track in &snapshot.tracks {
        let pid = track.layer.pid();
        let tid = track.tid;
        let cat = track.layer.cat();
        line(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track.name)
            ),
        );
        for ev in track.ring.iter_in_order() {
            let mut e = String::new();
            let name = escape(ev.name);
            match ev.kind {
                EventKind::Begin => {
                    e.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":"
                    ));
                    push_us(&mut e, ev.time_ns);
                    e.push_str(&format!(
                        ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                        ev.arg
                    ));
                }
                EventKind::End => {
                    e.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":"
                    ));
                    push_us(&mut e, ev.time_ns);
                    e.push_str(&format!(",\"pid\":{pid},\"tid\":{tid}}}"));
                }
                EventKind::Complete => {
                    e.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":"
                    ));
                    push_us(&mut e, ev.time_ns);
                    e.push_str(",\"dur\":");
                    push_us(&mut e, ev.duration_ns());
                    e.push_str(&format!(
                        ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                        ev.arg
                    ));
                }
                EventKind::Instant => {
                    e.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":"
                    ));
                    push_us(&mut e, ev.time_ns);
                    e.push_str(&format!(
                        ",\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                        ev.arg
                    ));
                }
                EventKind::Counter => {
                    e.push_str(&format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":"
                    ));
                    push_us(&mut e, ev.time_ns);
                    e.push_str(&format!(
                        ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{name}\":{}}}}}",
                        ev.extra
                    ));
                }
            }
            line(&mut out, e);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// What the schema checker learned about a valid trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Non-metadata events in the file.
    pub events: u64,
    /// Distinct (pid, tid) tracks that carry at least one event.
    pub tracks: u64,
    /// Category strings seen on events — the layers the trace covers.
    pub layers: BTreeSet<String>,
}

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Validates Chrome trace-event JSON against the subset of the format this
/// workspace exports (and Perfetto requires): every event carries `ph`,
/// `pid`, `tid` and a name; timed phases carry a non-negative `ts` (`X`
/// also a non-negative `dur`, `i` a scope, `C` a numeric sample); and
/// B/E span markers nest properly per track.
///
/// # Errors
/// A description of the first malformed event.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Map(top) = &root else {
        return Err("top level must be an object".into());
    };
    let Some(Value::Seq(events)) = field(top, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    let mut stats = ChromeTraceStats {
        events: 0,
        tracks: 0,
        layers: BTreeSet::new(),
    };
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Open B spans per (pid, tid), by name, for nesting checks.
    let mut open: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let Value::Map(ev) = ev else {
            return Err(format!("event {i}: not an object"));
        };
        let ph = field(ev, "ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let pid = field(ev, "pid")
            .and_then(Value::as_u64)
            .ok_or(format!("event {i}: missing integer pid"))?;
        let tid = field(ev, "tid")
            .and_then(Value::as_u64)
            .ok_or(format!("event {i}: missing integer tid"))?;
        let name = field(ev, "name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing name"))?;

        if ph == "M" {
            if !matches!(name, "process_name" | "thread_name") {
                return Err(format!("event {i}: unknown metadata record {name:?}"));
            }
            let ok = field(ev, "args")
                .and_then(|a| match a {
                    Value::Map(m) => field(m, "name").and_then(Value::as_str),
                    _ => None,
                })
                .is_some();
            if !ok {
                return Err(format!("event {i}: metadata without args.name"));
            }
            continue;
        }

        let ts = field(ev, "ts")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i}: missing numeric ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        match ph {
            "B" => open.entry((pid, tid)).or_default().push(name.to_owned()),
            "E" => {
                let stack = open.entry((pid, tid)).or_default();
                match stack.pop() {
                    Some(opened) if opened == name => {}
                    Some(opened) => {
                        return Err(format!(
                            "event {i}: E {name:?} closes B {opened:?} on pid {pid} tid {tid}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E {name:?} with no open span on pid {pid} tid {tid}"
                        ))
                    }
                }
            }
            "X" => {
                let dur = field(ev, "dur")
                    .and_then(Value::as_f64)
                    .ok_or(format!("event {i}: X without numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
            }
            "i" => {
                if field(ev, "s").and_then(Value::as_str).is_none() {
                    return Err(format!("event {i}: instant without scope s"));
                }
            }
            "C" => {
                let numeric = field(ev, "args")
                    .map(|a| match a {
                        Value::Map(m) => m.iter().any(|(_, v)| v.as_f64().is_some()),
                        _ => false,
                    })
                    .unwrap_or(false);
                if !numeric {
                    return Err(format!("event {i}: counter without a numeric sample"));
                }
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }

        if let Some(cat) = field(ev, "cat").and_then(Value::as_str) {
            stats.layers.insert(cat.to_owned());
        }
        tracks.insert((pid, tid));
        stats.events += 1;
    }

    for ((pid, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "unclosed span {name:?} on pid {pid} tid {tid} at end of trace"
            ));
        }
    }
    stats.tracks = tracks.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let tracer = Tracer::new(TraceConfig::on());
        let mut w = tracer.recorder(Layer::Runtime, "worker-0", 0);
        w.span_begin_at("drain", 100, 1);
        w.span_complete("iterate", 1_000, 2_500, 7);
        w.instant_at("publish", 2_500, 3);
        w.counter_at("steals", 3_000, 2);
        w.span_end_at("drain", 4_000, 1);
        w.finish();
        let mut t = tracer.recorder(Layer::Service, "tenant-0", 0);
        t.instant_at("admit", 10, 0);
        t.finish();
        tracer.snapshot()
    }

    #[test]
    fn exported_json_passes_the_schema_checker() {
        let json = to_chrome_json(&sample_snapshot());
        let stats = validate_chrome_trace(&json).expect("exported trace must validate");
        assert_eq!(stats.events, 6);
        assert_eq!(stats.tracks, 2);
        let layers: Vec<&str> = stats.layers.iter().map(String::as_str).collect();
        assert_eq!(layers, vec!["runtime", "service"]);
    }

    #[test]
    fn export_is_bit_identical_across_calls() {
        let snap = sample_snapshot();
        assert_eq!(to_chrome_json(&snap), to_chrome_json(&snap));
    }

    #[test]
    fn timestamps_render_as_integer_microseconds_with_ns_fraction() {
        let mut s = String::new();
        push_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        let mut s = String::new();
        push_us(&mut s, 42);
        assert_eq!(s, "0.042");
    }

    #[test]
    fn the_checker_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // Missing ts on a timed phase.
        let bad = "{\"traceEvents\":[{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("ts"));
        // Unbalanced spans.
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"name\":\"a\",\"ts\":1}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"E\",\"pid\":1,\"tid\":0,\"name\":\"a\",\"ts\":1}]}";
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open span"));
        // Mismatched nesting.
        let bad = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"name\":\"a\",\"ts\":1},\
            {\"ph\":\"E\",\"pid\":1,\"tid\":0,\"name\":\"b\",\"ts\":2}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("closes"));
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
