//! Deterministic text rendering of a trace snapshot.
//!
//! The summary is the grep-able counterpart of the Chrome export: per
//! layer and track it lists event counts and drops, and per span name a
//! log2-bucket duration histogram. Output order is fully determined by
//! the snapshot (sorted tracks, sorted names), so two identical runs
//! produce identical text — CI can diff it.

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::metrics::Log2Histogram;
use crate::tracer::TraceSnapshot;

/// Renders `snapshot` as deterministic text.
pub fn text_summary(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace summary: {} events retained, {} dropped, {} tracks\n",
        snapshot.total_events(),
        snapshot.total_dropped(),
        snapshot.tracks.len()
    ));
    for track in &snapshot.tracks {
        out.push_str(&format!(
            "[{}] {} — {} events ({} dropped)\n",
            track.layer.cat(),
            track.name,
            track.ring.len(),
            track.ring.dropped()
        ));
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut durations: BTreeMap<&'static str, Log2Histogram> = BTreeMap::new();
        for ev in track.ring.iter_in_order() {
            *counts.entry(ev.name).or_default() += 1;
            if ev.kind == EventKind::Complete {
                durations
                    .entry(ev.name)
                    .or_default()
                    .observe(ev.duration_ns());
            }
        }
        for (name, count) in &counts {
            out.push_str(&format!("  {name:<24} x{count}\n"));
            if let Some(h) = durations.get(name) {
                out.push_str(&format!(
                    "    duration ns: mean {:.0}, max {}, p50<={}, p99<={}\n",
                    h.mean(),
                    h.max(),
                    h.quantile_bound(0.50),
                    h.quantile_bound(0.99)
                ));
                for (bound, n) in h.nonzero_buckets() {
                    out.push_str(&format!("    <= {bound:>12} ns : {n}\n"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Layer, TraceConfig, Tracer};

    #[test]
    fn summaries_are_deterministic_and_cover_every_track() {
        let tracer = Tracer::new(TraceConfig::on());
        let mut w = tracer.recorder(Layer::Runtime, "worker-0", 0);
        w.span_complete("iterate", 0, 1_000, 1);
        w.span_complete("iterate", 1_000, 1_600, 2);
        w.instant_at("publish", 1_600, 2);
        w.finish();
        let mut h = tracer.recorder(Layer::Netsim, "host-3", 3);
        h.instant_at("msg_arrive", 10, 0);
        h.finish();
        let snap = tracer.snapshot();

        let text = text_summary(&snap);
        assert_eq!(text, text_summary(&snap), "rendering must be deterministic");
        assert!(text.contains("4 events retained"));
        assert!(text.contains("[runtime] worker-0"));
        assert!(text.contains("[netsim] host-3"));
        assert!(text.contains("iterate"));
        assert!(text.contains("duration ns"));
        assert!(text.contains("msg_arrive"));
    }
}
