//! The fixed-size trace record.
//!
//! An [`Event`] is 40 bytes of plain data: kind, a static name, one or two
//! timestamps and an integer argument. The name being `&'static str` *by
//! type* is the static-event-id rule: hot paths can never pay a per-event
//! `String` allocation, and the `xtask analyze` R8 lint keeps call sites in
//! the data plane from smuggling one in through the argument.

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome `ph: "B"`). Pair with [`EventKind::End`].
    Begin,
    /// A span closed (Chrome `ph: "E"`).
    End,
    /// A whole span in one record (Chrome `ph: "X"`): `time_ns` is the
    /// start, `extra` the end. Cheaper than a Begin/End pair — one ring
    /// slot, one push — which is why the block-iterate hot path uses it.
    Complete,
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
    /// A sampled counter value (Chrome `ph: "C"`): `extra` is the value.
    Counter,
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// What kind of record this is.
    pub kind: EventKind,
    /// Static event id. Never a runtime-built string (rule R8).
    pub name: &'static str,
    /// Timestamp in nanoseconds — monotonic for real runtimes, virtual for
    /// the simulated ones.
    pub time_ns: u64,
    /// Second operand: end timestamp for [`EventKind::Complete`], sampled
    /// value for [`EventKind::Counter`], zero otherwise.
    pub extra: u64,
    /// Free integer argument (block id, tenant id, victim worker, …).
    pub arg: u64,
}

impl Event {
    /// Builds a record. `const` so event construction can never hide an
    /// allocation or a clock read.
    pub const fn new(
        kind: EventKind,
        name: &'static str,
        time_ns: u64,
        extra: u64,
        arg: u64,
    ) -> Self {
        Event {
            kind,
            name,
            time_ns,
            extra,
            arg,
        }
    }

    /// Duration of a [`EventKind::Complete`] record, zero for the rest.
    pub fn duration_ns(&self) -> u64 {
        match self.kind {
            EventKind::Complete => self.extra.saturating_sub(self.time_ns),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_plain_data() {
        // The ring stores events by value; a size creep here multiplies
        // directly into tracing memory and copy cost.
        assert!(std::mem::size_of::<Event>() <= 48);
        let ev = Event::new(EventKind::Complete, "iterate", 10, 25, 3);
        assert_eq!(ev.duration_ns(), 15);
        assert_eq!(
            Event::new(EventKind::Instant, "publish", 5, 0, 0).duration_ns(),
            0
        );
    }
}
