//! `aiac-obs` — the observability plane of the AIAC workspace.
//!
//! The paper's whole argument is made by *observing* runtime behaviour, so
//! this crate gives every layer of the reproduction — the threaded runtime,
//! the simulated runtime over netsim hosts, and the multi-tenant service —
//! one shared vocabulary for what happened and when:
//!
//! * [`event::Event`] — a fixed-size trace record (span begin/end/complete,
//!   instant, counter) whose name is a `&'static str` by construction, so
//!   emitting one never allocates;
//! * [`ring::EventRing`] — a bounded ring that keeps the *newest* events and
//!   counts overwrites exactly;
//! * [`tracer::Tracer`] — hands out per-worker [`tracer::TrackRecorder`]s
//!   that own their ring outright (no lock on the hot path) and collects
//!   them into a [`tracer::TraceSnapshot`] when the run ends. When tracing
//!   is disabled the emit path is a single relaxed load and a branch;
//! * [`metrics::MetricsRegistry`] — named counters / gauges / log2-bucket
//!   histograms with one snapshot API, the single source of truth the bench
//!   harness derives its gateable metric lists from;
//! * [`chrome`] — a deterministic Chrome trace-event JSON exporter (open the
//!   file in Perfetto or `chrome://tracing`) plus the in-repo schema checker
//!   CI validates exported traces against;
//! * [`summary`] — a deterministic text rendering of a snapshot, with
//!   log2-bucket latency histograms per span name.
//!
//! The crate is dependency-free apart from the workspace's vendored serde
//! shims, and contains no `unsafe` at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod ring;
pub mod summary;
pub mod tracer;

pub use chrome::{to_chrome_json, validate_chrome_trace, ChromeTraceStats};
pub use event::{Event, EventKind};
pub use metrics::{Log2Histogram, MetricDirection, MetricEntry, MetricKind, MetricsRegistry};
pub use ring::EventRing;
pub use summary::text_summary;
pub use tracer::{Layer, TraceConfig, TraceSnapshot, Tracer, Track, TrackRecorder};
