//! The real service: OS-thread workers over the shared steal deque.
//!
//! [`SolverService::start`] spawns a pool of workers that steal job tokens
//! from one shared [`StealDeque`] — the same lock-free structure the
//! threaded data plane uses. Admission and the DRR dispatcher live behind
//! a single mutex; the deque crossing is the only hand-off between the
//! dispatcher and the pool. Every job carries a
//! [`CancelToken`], so callers can abort
//! queued or running work without tearing the pool down.
//!
//! Queue paths never panic: admission failures are [`AdmissionError`]
//! values and result delivery tolerates a dropped receiver (that is the
//! `xtask analyze` R7 rule, enforced over this file).

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use aiac_core::cancel::CancelToken;
use aiac_core::runtime::{PushError, Steal, StealDeque};
use aiac_obs::{TraceSnapshot, Tracer, TrackRecorder};

use crate::cache::{job_key, CachedSolve, ResultCache};
use crate::config::ServiceConfig;
use crate::drr::{Pending, TenantQueues};
use crate::job::{self, AdmissionError, JobId, JobResult, JobSpec, TenantId};
use crate::sim::{tenant_track, LoadReport};
use crate::traffic::TrafficSpec;

/// What a successful submission hands back: the job's id and a handle that
/// cancels it whether it is still queued or already running.
#[derive(Debug, Clone)]
pub struct JobTicket {
    /// The id the eventual [`JobResult`] will carry.
    pub id: JobId,
    /// Raising this token aborts the job at its next cancellation point.
    pub cancel: CancelToken,
}

/// A job that has left the tenant queues and owns (or awaits) a worker.
struct Active {
    pending: Pending,
    cancel: CancelToken,
}

/// Dispatcher state behind the service mutex.
struct State {
    queues: TenantQueues,
    /// Jobs handed to the deque or executing, keyed by deque token.
    slots: HashMap<usize, Active>,
    /// Cancel handles of every admitted-but-unfinished job, keyed by id.
    tickets: HashMap<JobId, CancelToken>,
    next_id: JobId,
    next_token: usize,
    in_flight: u64,
    peak_in_flight: u64,
    completed: u64,
    paused: bool,
    shutdown: bool,
}

/// Everything workers and the front end share.
struct Shared {
    config: ServiceConfig,
    state: Mutex<State>,
    work_ready: Condvar,
    injector: StealDeque,
    cache: Mutex<ResultCache>,
    started: Instant,
}

impl Shared {
    /// Moves queued jobs onto the deque until it fills, the queues drain,
    /// or the service is paused. Returns how many jobs moved.
    fn refill_locked(&self, state: &mut State) -> usize {
        if state.paused {
            return 0;
        }
        let mut moved = 0;
        while let Some(pending) = state.queues.dispatch() {
            let token = state.next_token;
            state.next_token += 1;
            // The handle was registered at submission; a missing entry is
            // impossible while the job is in flight, but an uncancellable
            // default beats wedging the dispatcher.
            let cancel = state.tickets.get(&pending.id).cloned().unwrap_or_default();
            state.slots.insert(token, Active { pending, cancel });
            match self.injector.push(token) {
                Ok(()) => moved += 1,
                Err(PushError::Full) => {
                    // Hand the job back unreordered; a worker will refill
                    // once the deque drains.
                    if let Some(put_back) = state.slots.remove(&token) {
                        state.queues.requeue_front(put_back.pending);
                    }
                    break;
                }
            }
        }
        moved
    }
}

/// One pool worker: steals tokens, executes jobs, delivers results.
struct Worker {
    shared: Arc<Shared>,
    results_tx: mpsc::Sender<JobResult>,
}

impl Worker {
    fn run(&self) {
        loop {
            match self.shared.injector.steal() {
                Steal::Success(token) => self.execute(token),
                Steal::Retry => std::thread::yield_now(),
                Steal::Empty => {
                    let mut state = self.shared.state.lock().expect("service mutex poisoned");
                    if self.shared.refill_locked(&mut state) > 0 {
                        continue;
                    }
                    if state.shutdown && state.slots.is_empty() && state.queues.is_empty() {
                        break;
                    }
                    // Between our Steal::Empty and taking the lock, another
                    // path (submit, resume, a completing worker) may have
                    // refilled the deque and fired its notification. Every
                    // push happens under this lock, so re-checking here
                    // closes the lost-wakeup window: either the token is
                    // already visible (steal again), or the push will come
                    // after we release the lock in wait() and its
                    // notify_all wakes us.
                    if !self.shared.injector.is_empty() {
                        continue;
                    }
                    // Nothing to do: sleep until a submit, a completion or
                    // shutdown changes the picture. Spurious wakeups just
                    // re-enter the steal loop.
                    let _guard = self
                        .shared
                        .work_ready
                        .wait(state)
                        .expect("service mutex poisoned");
                }
            }
        }
    }

    fn execute(&self, token: usize) {
        let active = {
            let mut state = self.shared.state.lock().expect("service mutex poisoned");
            state.slots.remove(&token)
        };
        let Some(Active { pending, cancel }) = active else {
            return;
        };
        let Pending {
            id,
            spec,
            arrival_secs,
        } = pending;

        let result = self.solve_job(id, &spec, &cancel, arrival_secs);
        self.deliver(result);

        let mut state = self.shared.state.lock().expect("service mutex poisoned");
        state.tickets.remove(&id);
        state.in_flight -= 1;
        state.completed += 1;
        self.shared.refill_locked(&mut state);
        drop(state);
        self.shared.work_ready.notify_all();
    }

    fn solve_job(
        &self,
        id: JobId,
        spec: &JobSpec,
        cancel: &CancelToken,
        arrival_secs: f64,
    ) -> JobResult {
        let finish = |converged: bool,
                      cancelled: bool,
                      from_cache: bool,
                      sweeps: u64,
                      final_residual: f64,
                      solution: Vec<f64>| {
            JobResult {
                job: id,
                tenant: spec.tenant,
                converged,
                cancelled,
                from_cache,
                sweeps,
                final_residual,
                latency_secs: self.shared.started.elapsed().as_secs_f64() - arrival_secs,
                solution,
            }
        };

        if cancel.is_cancelled() {
            return finish(false, true, false, 0, f64::INFINITY, Vec::new());
        }

        let key = job_key(spec);
        let hit = {
            let mut cache = self.shared.cache.lock().expect("cache mutex poisoned");
            cache.lookup(key)
        };
        if let Some(cached) = hit {
            return finish(
                cached.converged,
                false,
                true,
                cached.sweeps,
                cached.final_residual,
                cached.solution,
            );
        }

        let outcome = job::solve(spec, Some(cancel));
        if !outcome.cancelled {
            let mut cache = self.shared.cache.lock().expect("cache mutex poisoned");
            cache.insert(
                key,
                CachedSolve {
                    converged: outcome.converged,
                    sweeps: outcome.sweeps,
                    final_residual: outcome.final_residual,
                    virtual_cost_secs: outcome.virtual_cost_secs,
                    solution: outcome.solution.clone(),
                },
            );
        }
        finish(
            outcome.converged,
            outcome.cancelled,
            false,
            outcome.sweeps,
            outcome.final_residual,
            outcome.solution,
        )
    }

    /// Hands a result to whoever holds the receiver. A dropped receiver is
    /// not an error: the caller stopped listening, the job still ran.
    fn deliver(&self, result: JobResult) {
        let _ = self.results_tx.send(result);
    }
}

/// The multi-tenant solver service front end.
pub struct SolverService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    results_rx: Mutex<Option<mpsc::Receiver<JobResult>>>,
}

impl SolverService {
    /// Starts the service: spawns the worker pool and begins dispatching
    /// immediately.
    ///
    /// # Panics
    /// When `config` fails [`ServiceConfig::validate`].
    pub fn start(config: ServiceConfig) -> Self {
        Self::start_inner(config, false)
    }

    /// Starts with dispatch *paused*: jobs are admitted and queued but no
    /// worker runs anything until [`SolverService::resume`]. The load tests
    /// use this to pile up a deterministic number of in-flight jobs.
    pub fn start_paused(config: ServiceConfig) -> Self {
        Self::start_inner(config, true)
    }

    fn start_inner(config: ServiceConfig, paused: bool) -> Self {
        config
            .validate()
            .unwrap_or_else(|why| panic!("invalid service config: {why}"));
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State {
                queues: TenantQueues::new(config.tenant_queue_depth, config.drr_quantum),
                slots: HashMap::new(),
                tickets: HashMap::new(),
                next_id: 0,
                next_token: 0,
                in_flight: 0,
                peak_in_flight: 0,
                completed: 0,
                paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            injector: StealDeque::new(config.max_in_flight),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            started: Instant::now(),
        });
        let (results_tx, results_rx) = mpsc::channel();
        let workers = (0..config.workers)
            .map(|i| {
                let worker = Worker {
                    shared: Arc::clone(&shared),
                    results_tx: results_tx.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("aiac-service-{i}"))
                    .spawn(move || worker.run())
                    .expect("failed to spawn service worker")
            })
            .collect();
        SolverService {
            shared,
            workers,
            results_rx: Mutex::new(Some(results_rx)),
        }
    }

    /// Admits one job, or rejects it with a typed backpressure error.
    ///
    /// # Errors
    /// [`AdmissionError::Closed`] after [`SolverService::close`],
    /// [`AdmissionError::InFlightLimit`] at the global bound, and
    /// [`AdmissionError::TenantQueueFull`] at the tenant's depth.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, AdmissionError> {
        let mut state = self.shared.state.lock().expect("service mutex poisoned");
        if state.shutdown {
            return Err(AdmissionError::Closed);
        }
        if state.in_flight >= self.shared.config.max_in_flight as u64 {
            return Err(AdmissionError::InFlightLimit {
                limit: self.shared.config.max_in_flight,
            });
        }
        let id = state.next_id;
        let pending = Pending {
            id,
            spec,
            arrival_secs: self.shared.started.elapsed().as_secs_f64(),
        };
        state.queues.enqueue(pending)?;
        state.next_id += 1;
        let cancel = CancelToken::new();
        state.tickets.insert(id, cancel.clone());
        state.in_flight += 1;
        state.peak_in_flight = state.peak_in_flight.max(state.in_flight);
        self.shared.refill_locked(&mut state);
        drop(state);
        self.shared.work_ready.notify_all();
        Ok(JobTicket { id, cancel })
    }

    /// Releases a paused service: queued jobs flow to the pool.
    pub fn resume(&self) {
        let mut state = self.shared.state.lock().expect("service mutex poisoned");
        state.paused = false;
        self.shared.refill_locked(&mut state);
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Stops admission. Already-queued jobs still drain (pausing is lifted
    /// so the backlog cannot wedge the workers); results keep flowing until
    /// the last admitted job completes.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("service mutex poisoned");
        state.shutdown = true;
        state.paused = false;
        self.shared.refill_locked(&mut state);
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Closes the service and joins the pool after it drains.
    pub fn shutdown(mut self) {
        self.close();
        self.join_workers();
    }

    /// Takes the result receiver; `None` after the first call.
    pub fn take_results(&self) -> Option<mpsc::Receiver<JobResult>> {
        let mut slot = self.results_rx.lock().expect("service mutex poisoned");
        slot.take()
    }

    /// Highest number of admitted-but-unfinished jobs seen so far.
    pub fn peak_in_flight(&self) -> u64 {
        let state = self.shared.state.lock().expect("service mutex poisoned");
        state.peak_in_flight
    }

    /// Admitted-but-unfinished jobs right now.
    pub fn in_flight(&self) -> u64 {
        let state = self.shared.state.lock().expect("service mutex poisoned");
        state.in_flight
    }

    /// `(hits, misses)` of the shared result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = self.shared.cache.lock().expect("cache mutex poisoned");
        (cache.hits(), cache.misses())
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.close();
        self.join_workers();
    }
}

/// Replays a traffic stream on the real pool and reports what happened.
///
/// The stream is submitted up front against a *paused* service, so the
/// in-flight peak is a deterministic property of the traffic (and the load
/// test can assert "more than a thousand concurrent jobs"); dispatch then
/// resumes and everything drains through the shared deque. Latencies are
/// wall-clock and therefore *not* gateable — the virtual-clock twin in
/// [`crate::sim`] owns the deterministic metrics.
pub fn run_real_load(config: &ServiceConfig, traffic: &TrafficSpec) -> LoadReport {
    run_real_load_traced(config, traffic).0
}

/// Like [`run_real_load`], also returning the event trace: per-tenant
/// [`aiac_obs::Layer::Service`] tracks recorded on the driver thread —
/// admission verdicts at submission time and one wall-clock lifecycle span
/// per completed job (reconstructed from the result's latency, so the
/// workers themselves stay untouched by tracing). Empty (and free) when
/// `config.tracing` is off.
pub fn run_real_load_traced(
    config: &ServiceConfig,
    traffic: &TrafficSpec,
) -> (LoadReport, TraceSnapshot) {
    let tracer = Tracer::new(config.tracing);
    let traced = tracer.is_enabled();
    let mut recorders: BTreeMap<TenantId, TrackRecorder> = BTreeMap::new();
    let service = SolverService::start_paused(*config);
    let arrivals = traffic.generate();
    let started = Instant::now();

    let mut report = LoadReport {
        generated: arrivals.len() as u64,
        completed: 0,
        rejected: 0,
        rejected_tenant_full: 0,
        rejected_in_flight: 0,
        cache_hits: 0,
        cache_misses: 0,
        peak_in_flight: 0,
        in_flight_bound: config.max_in_flight as u64,
        makespan_secs: 0.0,
        latencies: Vec::with_capacity(arrivals.len()),
        per_tenant_goodput: std::collections::BTreeMap::new(),
        per_tenant_admitted: std::collections::BTreeMap::new(),
        per_tenant_submitted: std::collections::BTreeMap::new(),
    };

    let mut admitted = 0u64;
    for arrival in &arrivals {
        *report
            .per_tenant_submitted
            .entry(arrival.spec.tenant)
            .or_default() += 1;
        let verdict = match service.submit(arrival.spec.clone()) {
            Ok(_ticket) => {
                admitted += 1;
                *report
                    .per_tenant_admitted
                    .entry(arrival.spec.tenant)
                    .or_default() += 1;
                "admit"
            }
            Err(AdmissionError::TenantQueueFull { .. }) => {
                report.rejected += 1;
                report.rejected_tenant_full += 1;
                "reject_tenant_full"
            }
            Err(AdmissionError::InFlightLimit { .. }) => {
                report.rejected += 1;
                report.rejected_in_flight += 1;
                "reject_in_flight"
            }
            Err(AdmissionError::Closed) => {
                report.rejected += 1;
                "reject_closed"
            }
        };
        if traced {
            tenant_track(&mut recorders, &tracer, arrival.spec.tenant).instant(verdict, admitted);
        }
    }
    // Everything is queued and nothing has run: the peak is exact here.
    report.peak_in_flight = service.peak_in_flight();

    let rx = service
        .take_results()
        .expect("fresh service must still hold its receiver");
    service.resume();

    for _ in 0..admitted {
        let Ok(result) = rx.recv() else {
            break;
        };
        report.completed += 1;
        let latency = result.latency_secs.max(0.0);
        report.latencies.push(latency);
        *report.per_tenant_goodput.entry(result.tenant).or_default() += 1;
        if traced {
            // Reconstruct the lifecycle span from the result's own latency:
            // the workers stay untouched by tracing, and the driver thread
            // remains the single writer of every tenant track.
            let end_ns = tracer.now_ns();
            let start_ns = end_ns.saturating_sub((latency * 1e9).round() as u64);
            tenant_track(&mut recorders, &tracer, result.tenant)
                .span_complete("job", start_ns, end_ns, result.job);
        }
    }
    report.makespan_secs = started.elapsed().as_secs_f64();
    let (hits, misses) = service.cache_stats();
    report.cache_hits = hits;
    report.cache_misses = misses;
    service.shutdown();
    drop(recorders);
    (report, tracer.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ServiceProblem, TenantId};
    use std::collections::BTreeMap;

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            max_in_flight: 2_048,
            tenant_queue_depth: 512,
            drr_quantum: 4,
            cache_capacity: 64,
            ..ServiceConfig::default()
        }
    }

    fn cheap_job(tenant: TenantId) -> JobSpec {
        JobSpec {
            tenant,
            problem: ServiceProblem::Ring { blocks: 4 },
            epsilon: 1e-6,
            max_sweeps: 10_000,
        }
    }

    #[test]
    fn an_idle_service_shuts_down_cleanly() {
        let service = SolverService::start(small_config());
        service.shutdown();
    }

    #[test]
    fn a_thousand_plus_concurrent_jobs_all_complete() {
        let service = SolverService::start_paused(small_config());
        let total = 1_200u64;
        for i in 0..total {
            service.submit(cheap_job((i % 4) as TenantId)).unwrap();
        }
        assert_eq!(service.peak_in_flight(), total);
        assert!(service.peak_in_flight() >= 1_000);
        let rx = service.take_results().unwrap();
        service.resume();
        let mut per_tenant: BTreeMap<TenantId, u64> = BTreeMap::new();
        for _ in 0..total {
            let result = rx.recv().unwrap();
            assert!(result.converged || result.from_cache);
            *per_tenant.entry(result.tenant).or_default() += 1;
        }
        assert_eq!(per_tenant.values().sum::<u64>(), total);
        assert_eq!(per_tenant.len(), 4);
        service.shutdown();
    }

    #[test]
    fn a_single_worker_never_misses_a_wakeup() {
        // Regression: a worker that saw Steal::Empty could sleep on the
        // condvar after submit() had already pushed a token and notified,
        // wedging a one-worker service forever. Each iteration races one
        // submit against the worker going idle.
        let config = ServiceConfig {
            workers: 1,
            max_in_flight: 8,
            tenant_queue_depth: 8,
            drr_quantum: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let service = SolverService::start(config);
        let rx = service.take_results().unwrap();
        for i in 0..200u64 {
            let ticket = service.submit(cheap_job((i % 3) as TenantId)).unwrap();
            let result = rx.recv().unwrap();
            assert_eq!(result.job, ticket.id);
        }
        service.shutdown();
    }

    #[test]
    fn the_in_flight_bound_rejects_at_the_door() {
        let config = ServiceConfig {
            workers: 1,
            max_in_flight: 4,
            tenant_queue_depth: 4,
            drr_quantum: 1,
            cache_capacity: 4,
            ..ServiceConfig::default()
        };
        let service = SolverService::start_paused(config);
        for i in 0..4 {
            service.submit(cheap_job(i)).unwrap();
        }
        let err = service.submit(cheap_job(9)).unwrap_err();
        assert_eq!(err, AdmissionError::InFlightLimit { limit: 4 });
        service.resume();
        service.shutdown();
    }

    #[test]
    fn a_full_tenant_lane_rejects_only_that_tenant() {
        let config = ServiceConfig {
            workers: 1,
            max_in_flight: 64,
            tenant_queue_depth: 2,
            drr_quantum: 1,
            cache_capacity: 4,
            ..ServiceConfig::default()
        };
        let service = SolverService::start_paused(config);
        service.submit(cheap_job(0)).unwrap();
        service.submit(cheap_job(0)).unwrap();
        let err = service.submit(cheap_job(0)).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TenantQueueFull {
                tenant: 0,
                depth: 2
            }
        );
        service.submit(cheap_job(1)).unwrap();
        service.resume();
        service.shutdown();
    }

    #[test]
    fn a_closed_service_refuses_new_work() {
        let service = SolverService::start(small_config());
        service.close();
        let err = service.submit(cheap_job(0)).unwrap_err();
        assert_eq!(err, AdmissionError::Closed);
        service.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_skips_its_solve() {
        let service = SolverService::start_paused(small_config());
        let ticket = service.submit(cheap_job(0)).unwrap();
        ticket.cancel.cancel();
        let rx = service.take_results().unwrap();
        service.resume();
        let result = rx.recv().unwrap();
        assert_eq!(result.job, ticket.id);
        assert!(result.cancelled);
        assert!(!result.converged);
        assert_eq!(result.sweeps, 0);
        assert!(result.solution.is_empty());
        service.shutdown();
    }

    #[test]
    fn repeated_jobs_are_served_from_the_cache() {
        let config = ServiceConfig {
            workers: 1,
            max_in_flight: 64,
            tenant_queue_depth: 32,
            drr_quantum: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        };
        let service = SolverService::start_paused(config);
        for _ in 0..10 {
            service.submit(cheap_job(0)).unwrap();
        }
        let rx = service.take_results().unwrap();
        service.resume();
        let mut from_cache = 0;
        for _ in 0..10 {
            let result = rx.recv().unwrap();
            assert!(result.converged);
            if result.from_cache {
                from_cache += 1;
            }
        }
        assert_eq!(from_cache, 9, "one miss, nine hits on a single worker");
        assert_eq!(service.cache_stats(), (9, 1));
        service.shutdown();
    }

    #[test]
    fn dropping_the_service_joins_the_pool() {
        let service = SolverService::start(small_config());
        service.submit(cheap_job(0)).unwrap();
        drop(service);
    }

    #[test]
    fn run_real_load_loses_nothing() {
        let traffic = TrafficSpec {
            jobs: 300,
            initial_burst: 200,
            ..TrafficSpec::smoke()
        };
        let config = small_config();
        let report = run_real_load(&config, &traffic);
        assert_eq!(report.generated, 300);
        assert_eq!(report.lost(), 0);
        assert!(report.peak_in_flight >= 200);
        assert!(report.peak_in_flight <= report.in_flight_bound);
        assert!(report.makespan_secs > 0.0);
        assert_eq!(report.latencies.len() as u64, report.completed);
    }

    #[test]
    fn traced_real_loads_record_admission_and_job_spans_per_tenant() {
        let traffic = TrafficSpec {
            jobs: 60,
            initial_burst: 20,
            ..TrafficSpec::smoke()
        };
        let config = small_config().with_tracing(aiac_obs::TraceConfig::on());
        let (report, trace) = run_real_load_traced(&config, &traffic);
        assert_eq!(report.lost(), 0);
        assert!(!trace.is_empty());
        assert_eq!(trace.layers(), vec![aiac_obs::Layer::Service]);
        let names: std::collections::BTreeSet<&str> = trace
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        assert!(names.contains("admit"));
        assert!(names.contains("job"));
        // one track per submitting tenant, all on the driver thread
        assert_eq!(trace.tracks.len(), report.per_tenant_submitted.len());

        // tracing off leaves no trace at all
        let (_, off) = run_real_load_traced(&small_config(), &traffic);
        assert!(off.is_empty());
    }
}
