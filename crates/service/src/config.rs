//! Service sizing.
//!
//! A [`ServiceConfig`] is the set of bounds the service enforces. Every
//! bound exists to keep memory and latency finite under overload: the
//! in-flight limit caps admitted work, the per-tenant depth caps any one
//! tenant's backlog, and the cache capacity caps the memoised results.
//! Defaults come from the environment profiles' `ServiceKnobs`, so the
//! same experiment spec can size the service the way each of the paper's
//! environments would.

use aiac_envs::profile::EnvProfile;
use aiac_obs::TraceConfig;
use serde::{Deserialize, Serialize};

/// Default result-cache capacity (distinct (problem, tolerance) keys).
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Bounds and sizing of one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Workers in the shared solve pool.
    pub workers: usize,
    /// Global bound on admitted-but-unfinished jobs (queued + executing).
    pub max_in_flight: usize,
    /// Bound on each tenant's pending queue.
    pub tenant_queue_depth: usize,
    /// Deficit-round-robin quantum, in jobs per tenant per round.
    pub drr_quantum: usize,
    /// Result-cache capacity, in distinct structural keys.
    pub cache_capacity: usize,
    /// Event-tracing knobs forwarded to the observability plane. Off by
    /// default, in which case every instrumentation site in the replay and
    /// the real pool reduces to one relaxed atomic load and a branch.
    pub tracing: TraceConfig,
}

impl ServiceConfig {
    /// The configuration an environment profile's knobs imply.
    pub fn from_profile(profile: EnvProfile) -> Self {
        let knobs = profile.service_knobs();
        ServiceConfig {
            workers: knobs.workers,
            max_in_flight: knobs.max_in_flight,
            tenant_queue_depth: knobs.tenant_queue_depth,
            drr_quantum: knobs.drr_quantum,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            tracing: TraceConfig::off(),
        }
    }

    /// Turns event tracing on/off (builder style).
    pub fn with_tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// Checks the bounds are usable.
    ///
    /// # Errors
    /// A human-readable description of the first degenerate field.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be > 0".into());
        }
        if self.max_in_flight == 0 {
            return Err("max_in_flight must be > 0".into());
        }
        if self.tenant_queue_depth == 0 {
            return Err("tenant_queue_depth must be > 0".into());
        }
        if self.tenant_queue_depth > self.max_in_flight {
            return Err(format!(
                "tenant_queue_depth {} exceeds max_in_flight {}: one tenant could \
                 monopolise the whole admission budget",
                self.tenant_queue_depth, self.max_in_flight
            ));
        }
        if self.drr_quantum == 0 {
            return Err("drr_quantum must be > 0".into());
        }
        Ok(())
    }
}

impl Default for ServiceConfig {
    /// The shared-memory profile's sizing — what a real deployment on one
    /// SMP machine runs.
    fn default() -> Self {
        ServiceConfig::from_profile(EnvProfile::LocalThreads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_yields_a_valid_config() {
        for p in EnvProfile::ALL {
            let config = ServiceConfig::from_profile(p);
            assert!(config.validate().is_ok(), "{p}: {config:?}");
        }
    }

    #[test]
    fn degenerate_bounds_are_rejected_with_the_field_name() {
        let base = ServiceConfig::default();
        let cases = [
            (ServiceConfig { workers: 0, ..base }, "workers"),
            (
                ServiceConfig {
                    max_in_flight: 0,
                    ..base
                },
                "max_in_flight",
            ),
            (
                ServiceConfig {
                    drr_quantum: 0,
                    ..base
                },
                "drr_quantum",
            ),
            (
                ServiceConfig {
                    tenant_queue_depth: base.max_in_flight + 1,
                    ..base
                },
                "monopolise",
            ),
        ];
        for (config, needle) in cases {
            let err = config.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn configs_round_trip_through_json() {
        let config = ServiceConfig::default().with_tracing(TraceConfig::on());
        let text = serde_json::to_string(&config).unwrap();
        let back: ServiceConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn tracing_defaults_off_and_the_builder_enables_it() {
        let config = ServiceConfig::default();
        assert!(!config.tracing.enabled);
        let traced = config.with_tracing(TraceConfig::on());
        assert!(traced.tracing.enabled);
    }
}
