//! Structural result cache.
//!
//! Two jobs whose problems are structurally identical, whose tolerances
//! are bit-equal and whose sweep budgets match produce the same solve, so
//! the service memoises outcomes under [`job_key`] — an FNV-1a hash of the
//! problem's structural fields, the tolerance bits and the sweep budget.
//! The cache is bounded (FIFO eviction) and counts hits and misses so the
//! load reports can gate on hit rate.
//!
//! The cache itself is a plain `&mut self` structure; the real service
//! wraps it in a `Mutex`, the virtual-clock simulation owns it directly.

use std::collections::{HashMap, VecDeque};

use crate::job::JobSpec;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The structural cache key of a job's (problem, tolerance, sweep budget)
/// triple. The tenant is deliberately *not* hashed: the cache is shared,
/// and identical solves are identical no matter who asked.
///
/// Equal keys ⇒ the problems build identical kernels and run to the same
/// tolerance under the same budget, so a cached outcome is exact — the
/// budget matters because a budget-truncated solve is cached unconverged,
/// and serving that to a job with a larger budget (or a deep solve to a
/// job with a smaller one) would misreport what *its* solve would do.
pub fn job_key(spec: &JobSpec) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for field in spec.problem.structural_fields() {
        mix(field);
    }
    mix(spec.epsilon.to_bits());
    mix(spec.max_sweeps as u64);
    hash
}

/// The memoised part of a solve — everything a [`crate::job::JobResult`]
/// needs except the identity and timing of the particular job.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolve {
    /// Whether the solve reached its tolerance.
    pub converged: bool,
    /// Sweeps the original solve ran.
    pub sweeps: u64,
    /// Final residual of the original solve.
    pub final_residual: f64,
    /// Deterministic virtual duration of the original solve.
    pub virtual_cost_secs: f64,
    /// The solution vector.
    pub solution: Vec<f64>,
}

/// A bounded FIFO-evicting map from [`job_key`] to [`CachedSolve`], with
/// hit/miss counters.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<u64, CachedSolve>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` distinct keys. A zero
    /// capacity is a legal "cache disabled" configuration: every lookup
    /// misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks a key up, counting the outcome. Hits clone the stored solve so
    /// the caller owns its copy outside any lock.
    pub fn lookup(&mut self, key: u64) -> Option<CachedSolve> {
        match self.map.get(&key) {
            Some(found) => {
                self.hits += 1;
                Some(found.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a solve under `key`, evicting the oldest entry at capacity.
    /// Re-inserting an existing key refreshes the value without growing.
    pub fn insert(&mut self, key: u64, solve: CachedSolve) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, solve).is_some() {
            return;
        }
        self.order.push_back(key);
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ServiceProblem;

    fn spec(problem: ServiceProblem, epsilon: f64, max_sweeps: usize) -> JobSpec {
        JobSpec {
            tenant: 0,
            problem,
            epsilon,
            max_sweeps,
        }
    }

    fn solve_stub(tag: u64) -> CachedSolve {
        CachedSolve {
            converged: true,
            sweeps: tag,
            final_residual: 1e-9,
            virtual_cost_secs: tag as f64,
            solution: vec![tag as f64],
        }
    }

    #[test]
    fn keys_separate_problems_tolerances_and_budgets() {
        let ring = ServiceProblem::Ring { blocks: 6 };
        let other_ring = ServiceProblem::Ring { blocks: 7 };
        let sparse = ServiceProblem::SparseLinear { n: 6, blocks: 6 };
        let base = spec(ring, 1e-6, 100);
        assert_ne!(job_key(&base), job_key(&spec(other_ring, 1e-6, 100)));
        assert_ne!(job_key(&base), job_key(&spec(sparse, 1e-6, 100)));
        assert_ne!(job_key(&base), job_key(&spec(ring, 1e-7, 100)));
        // A different sweep budget can change the outcome (a truncated
        // solve is legitimately unconverged), so it must change the key.
        assert_ne!(job_key(&base), job_key(&spec(ring, 1e-6, 3)));
        assert_eq!(job_key(&base), job_key(&spec(ring, 1e-6, 100)));
    }

    #[test]
    fn keys_ignore_the_tenant() {
        let ring = ServiceProblem::Ring { blocks: 6 };
        let mine = spec(ring, 1e-6, 100);
        let theirs = JobSpec {
            tenant: 7,
            ..mine.clone()
        };
        assert_eq!(job_key(&mine), job_key(&theirs));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, solve_stub(1));
        assert_eq!(cache.lookup(1).unwrap().sweeps, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_the_oldest_key_first() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, solve_stub(1));
        cache.insert(2, solve_stub(2));
        cache.insert(3, solve_stub(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_none(), "1 was oldest and must be gone");
        assert!(cache.lookup(2).is_some());
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn reinserting_a_key_refreshes_without_evicting() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, solve_stub(1));
        cache.insert(2, solve_stub(2));
        cache.insert(1, solve_stub(10));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1).unwrap().sweeps, 10);
        assert!(cache.lookup(2).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, solve_stub(1));
        assert!(cache.is_empty());
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.misses(), 1);
    }
}
