//! Bounded per-tenant queues drained by deficit round robin.
//!
//! Each tenant owns one bounded FIFO lane. The dispatcher visits active
//! lanes in round-robin order and, at the start of a lane's turn, credits
//! it with the configured quantum of jobs; the lane dispatches until the
//! credit or the backlog runs out, then yields the turn. Because every
//! backlogged lane receives the same credit per round, dispatch counts of
//! always-backlogged tenants can never diverge by more than one quantum —
//! the no-starvation property the proptests pin down.

use std::collections::{BTreeMap, VecDeque};

use crate::job::{AdmissionError, JobId, JobSpec, TenantId};

/// A job sitting in a tenant lane, waiting for dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// The id admission assigned.
    pub id: JobId,
    /// The job itself.
    pub spec: JobSpec,
    /// When the job arrived, on whichever clock the caller runs.
    pub arrival_secs: f64,
}

/// One tenant's lane: its backlog plus its DRR accounting.
#[derive(Debug, Default)]
struct Lane {
    pending: VecDeque<Pending>,
    /// Jobs this lane may still dispatch in the current round.
    deficit: usize,
    /// Whether the lane currently sits in the active rotation.
    in_round: bool,
    admitted: u64,
    dispatched: u64,
}

/// All tenant lanes plus the round-robin rotation over the backlogged ones.
#[derive(Debug)]
pub struct TenantQueues {
    depth: usize,
    quantum: usize,
    tenants: BTreeMap<TenantId, Lane>,
    /// Backlogged tenants in rotation order; the front holds the turn.
    active: VecDeque<TenantId>,
    len: usize,
}

impl TenantQueues {
    /// Creates the queue set: each lane holds at most `depth` jobs, each
    /// round credits `quantum` dispatches per backlogged tenant.
    pub fn new(depth: usize, quantum: usize) -> Self {
        assert!(depth > 0, "lanes need room for at least one job");
        assert!(quantum > 0, "a zero quantum would never dispatch");
        TenantQueues {
            depth,
            quantum,
            tenants: BTreeMap::new(),
            active: VecDeque::new(),
            len: 0,
        }
    }

    /// Queued jobs across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a job to its tenant's lane.
    ///
    /// # Errors
    /// [`AdmissionError::TenantQueueFull`] when the lane already holds the
    /// configured depth — the caller sheds the job instead of growing.
    pub fn enqueue(&mut self, job: Pending) -> Result<(), AdmissionError> {
        let tenant = job.spec.tenant;
        let lane = self.tenants.entry(tenant).or_default();
        if lane.pending.len() >= self.depth {
            return Err(AdmissionError::TenantQueueFull {
                tenant,
                depth: self.depth,
            });
        }
        lane.pending.push_back(job);
        lane.admitted += 1;
        self.len += 1;
        if !lane.in_round {
            lane.in_round = true;
            self.active.push_back(tenant);
        }
        Ok(())
    }

    /// Puts a job back at the *front* of its lane, bypassing the depth
    /// check — used when a popped job cannot be handed to the pool after
    /// all (injector momentarily full) and must not be lost or reordered.
    ///
    /// The pop's DRR accounting is undone in full: the dispatch count and
    /// the deficit unit it spent are both restored, and if spending that
    /// unit rotated the tenant's turn to the back of the round, the turn
    /// comes back to the front — the putback job goes out on the next
    /// dispatch instead of waiting a whole extra round.
    pub fn requeue_front(&mut self, job: Pending) {
        let tenant = job.spec.tenant;
        let lane = self.tenants.entry(tenant).or_default();
        // A zero deficit on an in-round lane means the pop spent the
        // lane's last credit and rotated its turn away.
        let turn_forfeited = lane.in_round && lane.deficit == 0;
        lane.pending.push_front(job);
        lane.dispatched = lane.dispatched.saturating_sub(1);
        lane.deficit = (lane.deficit + 1).min(self.quantum);
        self.len += 1;
        if !lane.in_round {
            lane.in_round = true;
            // Front, not back: the tenant still holds an unspent turn.
            self.active.push_front(tenant);
        } else if turn_forfeited && self.active.back() == Some(&tenant) {
            // Undo the quantum-spent rotation so the turn is at the front
            // again.
            self.active.rotate_right(1);
        }
    }

    /// Dispatches the next job under DRR, or `None` when all lanes are
    /// empty. One call pops at most one job; the rotation state persists
    /// across calls.
    pub fn dispatch(&mut self) -> Option<Pending> {
        loop {
            let tenant = *self.active.front()?;
            let Some(lane) = self.tenants.get_mut(&tenant) else {
                self.active.pop_front();
                continue;
            };
            if lane.pending.is_empty() {
                // Lane drained mid-turn: leave the round and forfeit the
                // remaining credit so idleness is never banked.
                lane.deficit = 0;
                lane.in_round = false;
                self.active.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = self.quantum;
            }
            let job = lane.pending.pop_front();
            let Some(job) = job else {
                continue;
            };
            lane.deficit -= 1;
            lane.dispatched += 1;
            self.len -= 1;
            if lane.pending.is_empty() {
                lane.deficit = 0;
                lane.in_round = false;
                self.active.pop_front();
            } else if lane.deficit == 0 {
                // Quantum spent: rotate to the back of the round.
                self.active.rotate_left(1);
            }
            return Some(job);
        }
    }

    /// Dispatch counts per tenant, for fairness accounting.
    pub fn dispatched_per_tenant(&self) -> BTreeMap<TenantId, u64> {
        self.tenants
            .iter()
            .map(|(t, lane)| (*t, lane.dispatched))
            .collect()
    }

    /// Admission counts per tenant.
    pub fn admitted_per_tenant(&self) -> BTreeMap<TenantId, u64> {
        self.tenants
            .iter()
            .map(|(t, lane)| (*t, lane.admitted))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ServiceProblem;
    use proptest::prelude::*;

    fn job(tenant: TenantId, id: JobId) -> Pending {
        Pending {
            id,
            spec: JobSpec {
                tenant,
                problem: ServiceProblem::Ring { blocks: 4 },
                epsilon: 1e-6,
                max_sweeps: 100,
            },
            arrival_secs: 0.0,
        }
    }

    #[test]
    fn single_tenant_drains_in_fifo_order() {
        let mut q = TenantQueues::new(8, 2);
        for id in 0..5 {
            q.enqueue(job(0, id)).unwrap();
        }
        let order: Vec<JobId> = std::iter::from_fn(|| q.dispatch()).map(|p| p.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn depth_bound_rejects_with_a_typed_error() {
        let mut q = TenantQueues::new(2, 1);
        q.enqueue(job(3, 0)).unwrap();
        q.enqueue(job(3, 1)).unwrap();
        let err = q.enqueue(job(3, 2)).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TenantQueueFull {
                tenant: 3,
                depth: 2
            }
        );
        // Other tenants are unaffected by tenant 3's full lane.
        q.enqueue(job(4, 3)).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn quantum_interleaves_backlogged_tenants() {
        let mut q = TenantQueues::new(16, 2);
        for id in 0..4 {
            q.enqueue(job(0, id)).unwrap();
        }
        for id in 4..8 {
            q.enqueue(job(1, id)).unwrap();
        }
        let tenants: Vec<TenantId> = std::iter::from_fn(|| q.dispatch())
            .map(|p| p.spec.tenant)
            .collect();
        assert_eq!(tenants, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn requeue_front_preserves_order_and_turn() {
        let mut q = TenantQueues::new(4, 2);
        q.enqueue(job(0, 0)).unwrap();
        q.enqueue(job(0, 1)).unwrap();
        let first = q.dispatch().unwrap();
        assert_eq!(first.id, 0);
        q.requeue_front(first);
        let again = q.dispatch().unwrap();
        assert_eq!(again.id, 0, "the putback job dispatches first again");
        assert_eq!(q.dispatch().unwrap().id, 1);
    }

    #[test]
    fn requeue_after_a_spent_quantum_restores_the_turn_and_deficit() {
        // Quantum 1: every pop spends the lane's whole credit and rotates
        // its turn to the back. A putback must undo that, or the returned
        // job waits a full extra round behind tenant 1.
        let mut q = TenantQueues::new(4, 1);
        q.enqueue(job(0, 0)).unwrap();
        q.enqueue(job(0, 1)).unwrap();
        q.enqueue(job(1, 2)).unwrap();
        let popped = q.dispatch().unwrap();
        assert_eq!(popped.id, 0);
        q.requeue_front(popped);
        assert_eq!(q.dispatch().unwrap().id, 0, "the putback keeps its turn");
        assert_eq!(q.dispatch().unwrap().id, 2, "then tenant 1 runs as usual");
        assert_eq!(q.dispatch().unwrap().id, 1);
        // The net accounting matches a run with no putback at all.
        let counts = q.dispatched_per_tenant();
        assert_eq!(counts[&0], 2);
        assert_eq!(counts[&1], 1);
    }

    #[test]
    fn dispatch_counters_track_work() {
        let mut q = TenantQueues::new(8, 1);
        q.enqueue(job(0, 0)).unwrap();
        q.enqueue(job(1, 1)).unwrap();
        q.enqueue(job(1, 2)).unwrap();
        while q.dispatch().is_some() {}
        let counts = q.dispatched_per_tenant();
        assert_eq!(counts[&0], 1);
        assert_eq!(counts[&1], 2);
    }

    proptest! {
        /// No tenant starves: with every lane pre-loaded and permanently
        /// backlogged, dispatch counts after any prefix of the drain can
        /// differ between tenants by at most one quantum.
        #[test]
        fn backlogged_tenants_never_diverge_past_one_quantum(
            tenants in 2usize..6,
            quantum in 1usize..4,
            per_tenant in 8usize..32,
            prefix_frac in 0.1f64..0.9,
        ) {
            let mut q = TenantQueues::new(per_tenant, quantum);
            let mut id = 0;
            for t in 0..tenants {
                for _ in 0..per_tenant {
                    q.enqueue(job(t as TenantId, id)).unwrap();
                    id += 1;
                }
            }
            // Stop while every lane is still backlogged so the invariant
            // applies to all tenants.
            let backlogged_prefix = tenants * (per_tenant - quantum);
            let steps = ((tenants * per_tenant) as f64 * prefix_frac) as usize;
            let steps = steps.min(backlogged_prefix);
            for _ in 0..steps {
                prop_assert!(q.dispatch().is_some());
            }
            let counts = q.dispatched_per_tenant();
            let max = counts.values().copied().max().unwrap_or(0);
            let min = counts.values().copied().min().unwrap_or(0);
            prop_assert!(
                max - min <= quantum as u64,
                "dispatch spread {max}-{min} exceeds quantum {quantum}: {counts:?}"
            );
        }

        /// Adversarial arrival mixes cannot push any lane past its depth,
        /// and every admitted job is eventually dispatched exactly once.
        #[test]
        fn no_admitted_job_is_lost_or_duplicated(
            arrivals in proptest::collection::vec(0u32..5, 1..200),
            depth in 1usize..8,
            quantum in 1usize..4,
        ) {
            let mut q = TenantQueues::new(depth, quantum);
            let mut admitted = Vec::new();
            for (i, tenant) in arrivals.iter().enumerate() {
                match q.enqueue(job(*tenant, i as JobId)) {
                    Ok(()) => admitted.push(i as JobId),
                    Err(AdmissionError::TenantQueueFull { .. }) => {
                        // Shed under backpressure; drain one job to make
                        // progress like a busy dispatcher would.
                        if let Some(p) = q.dispatch() {
                            prop_assert!(admitted.contains(&p.id));
                        }
                    }
                    Err(other) => prop_assert!(false, "unexpected {other:?}"),
                }
            }
            let mut drained: Vec<JobId> = Vec::new();
            while let Some(p) = q.dispatch() {
                drained.push(p.id);
            }
            prop_assert!(q.is_empty());
            let total: u64 = q.dispatched_per_tenant().values().sum();
            prop_assert_eq!(total as usize, admitted.len());
        }
    }
}
