//! Deterministic open-loop traffic generation.
//!
//! The generator produces a job stream from a seed and a [`TrafficSpec`]:
//! Poisson inter-arrivals (exponential gaps), occasional heavy-tailed burst
//! clusters (bounded Pareto sizes), tenants drawn from a weight vector, and
//! a problem mix with a hot problem plus a configurable fraction of
//! never-repeating tolerances that force cache misses. It is *open-loop*:
//! arrival times never react to service state, which is what makes overload
//! behaviour (queueing, shedding) observable at all.
//!
//! Everything is a pure function of the spec — the same seed yields the
//! same `Vec<Arrival>` on every platform and every run, so CI can gate the
//! simulated metrics exactly.

use serde::{Deserialize, Serialize};

use crate::job::{JobSpec, ServiceProblem, TenantId};

/// SplitMix64 — a tiny, seedable, platform-independent PRNG. Good enough
/// statistical quality for load generation, and trivially reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output, scaled into [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential draw with the given mean (inter-arrival gaps of a
    /// Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64();
        -mean * (1.0 - u).ln()
    }

    /// Bounded Pareto draw in `[1, max]` with tail index `alpha` — the
    /// heavy-tailed burst sizes.
    pub fn pareto(&mut self, alpha: f64, max: f64) -> f64 {
        let u = self.next_f64();
        (1.0 / (1.0 - u).powf(1.0 / alpha)).min(max)
    }

    /// Index into `weights` drawn proportionally to the weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len().saturating_sub(1)
    }
}

/// One entry of the problem mix tenants draw from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemMix {
    /// The problem submitted.
    pub problem: ServiceProblem,
    /// Its tolerance.
    pub epsilon: f64,
}

/// Everything the generator needs to produce a job stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// PRNG seed; equal seeds yield byte-identical streams.
    pub seed: u64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Relative traffic share per tenant; the tenant id is the index.
    pub tenant_weights: Vec<f64>,
    /// Mean gap between arrival events, in virtual seconds.
    pub mean_interarrival_secs: f64,
    /// Probability that an arrival event is a burst cluster.
    pub burst_prob: f64,
    /// Pareto tail index of burst sizes (smaller ⇒ heavier tail).
    pub burst_alpha: f64,
    /// Upper bound on one burst's size.
    pub burst_max: usize,
    /// Jobs released at t = 0 before the Poisson process starts — the
    /// load tests use this to pile up a known number of concurrent jobs.
    pub initial_burst: usize,
    /// Fraction of jobs that take the first (hot) entry of `problems`.
    pub hot_fraction: f64,
    /// Fraction of jobs whose tolerance is perturbed to a never-repeating
    /// value, guaranteeing a cache miss.
    pub unique_fraction: f64,
    /// The problem catalogue; index 0 is the hot problem.
    pub problems: Vec<ProblemMix>,
    /// Sweep budget stamped on every job.
    pub max_sweeps: usize,
}

/// One generated arrival: a time and the job submitted at that time.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time on the virtual clock, in seconds.
    pub at_secs: f64,
    /// The submitted job.
    pub spec: JobSpec,
}

impl TrafficSpec {
    /// The CI smoke stream: seeded, ~1.8 k jobs over four equal tenants,
    /// with a 1 200-job opening burst so the load test can assert more than
    /// a thousand concurrent jobs in flight.
    pub fn smoke() -> Self {
        TrafficSpec {
            seed: 42,
            jobs: 1_800,
            tenant_weights: vec![1.0, 1.0, 1.0, 1.0],
            mean_interarrival_secs: 1e-4,
            burst_prob: 0.05,
            burst_alpha: 1.3,
            burst_max: 64,
            initial_burst: 1_200,
            hot_fraction: 0.55,
            unique_fraction: 0.25,
            problems: vec![
                ProblemMix {
                    problem: ServiceProblem::Ring { blocks: 6 },
                    epsilon: 1e-8,
                },
                ProblemMix {
                    problem: ServiceProblem::Ring { blocks: 12 },
                    epsilon: 1e-8,
                },
                ProblemMix {
                    problem: ServiceProblem::SparseLinear { n: 64, blocks: 4 },
                    epsilon: 1e-6,
                },
            ],
            max_sweeps: 10_000,
        }
    }

    /// The full-fidelity stream: a longer, burstier mix with skewed tenant
    /// weights and a larger sparse problem in the catalogue.
    pub fn sustained() -> Self {
        TrafficSpec {
            seed: 42,
            jobs: 12_000,
            tenant_weights: vec![4.0, 2.0, 1.0, 1.0, 0.5, 0.5],
            mean_interarrival_secs: 5e-5,
            burst_prob: 0.10,
            burst_alpha: 1.2,
            burst_max: 256,
            initial_burst: 2_000,
            hot_fraction: 0.55,
            unique_fraction: 0.25,
            problems: vec![
                ProblemMix {
                    problem: ServiceProblem::Ring { blocks: 6 },
                    epsilon: 1e-8,
                },
                ProblemMix {
                    problem: ServiceProblem::Ring { blocks: 24 },
                    epsilon: 1e-8,
                },
                ProblemMix {
                    problem: ServiceProblem::SparseLinear { n: 128, blocks: 4 },
                    epsilon: 1e-6,
                },
                ProblemMix {
                    problem: ServiceProblem::SparseLinear { n: 256, blocks: 8 },
                    epsilon: 1e-6,
                },
            ],
            max_sweeps: 20_000,
        }
    }

    /// Generates the arrival stream this spec describes, sorted by time.
    pub fn generate(&self) -> Vec<Arrival> {
        assert!(!self.problems.is_empty(), "the problem catalogue is empty");
        assert!(!self.tenant_weights.is_empty(), "no tenants configured");
        let mut rng = SplitMix64::new(self.seed);
        let mut arrivals = Vec::with_capacity(self.jobs);
        let mut clock = 0.0_f64;
        let mut unique_counter = 0u64;
        while arrivals.len() < self.jobs {
            let in_opening_burst = arrivals.len() < self.initial_burst;
            let cluster = if in_opening_burst {
                self.initial_burst - arrivals.len()
            } else {
                clock += rng.exponential(self.mean_interarrival_secs);
                if self.burst_prob > 0.0 && rng.next_f64() < self.burst_prob {
                    rng.pareto(self.burst_alpha, self.burst_max as f64).round() as usize
                } else {
                    1
                }
            };
            let cluster = cluster.clamp(1, self.jobs - arrivals.len());
            for _ in 0..cluster {
                let tenant = rng.weighted_index(&self.tenant_weights) as TenantId;
                let pick = if rng.next_f64() < self.hot_fraction {
                    0
                } else {
                    (rng.next_u64() % self.problems.len() as u64) as usize
                };
                let mix = &self.problems[pick];
                let epsilon = if rng.next_f64() < self.unique_fraction {
                    unique_counter += 1;
                    // A tiny deterministic perturbation: changes the bits
                    // (and therefore the cache key) without changing the
                    // convergence behaviour measurably.
                    mix.epsilon * (1.0 + unique_counter as f64 * 1e-9)
                } else {
                    mix.epsilon
                };
                arrivals.push(Arrival {
                    at_secs: clock,
                    spec: JobSpec {
                        tenant,
                        problem: mix.problem,
                        epsilon,
                        max_sweeps: self.max_sweeps,
                    },
                });
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equal_seeds_yield_identical_streams() {
        let spec = TrafficSpec::smoke();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = TrafficSpec::smoke();
        let b = TrafficSpec {
            seed: 43,
            ..TrafficSpec::smoke()
        };
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn streams_are_sized_sorted_and_open_with_the_burst() {
        let spec = TrafficSpec::smoke();
        let arrivals = spec.generate();
        assert_eq!(arrivals.len(), spec.jobs);
        for pair in arrivals.windows(2) {
            assert!(pair[0].at_secs <= pair[1].at_secs);
        }
        for a in &arrivals[..spec.initial_burst] {
            assert_eq!(a.at_secs, 0.0, "opening burst arrives at t = 0");
        }
        assert!(arrivals[arrivals.len() - 1].at_secs > 0.0);
    }

    #[test]
    fn every_configured_tenant_receives_traffic() {
        let arrivals = TrafficSpec::smoke().generate();
        let mut per_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
        for a in &arrivals {
            *per_tenant.entry(a.spec.tenant).or_default() += 1;
        }
        assert_eq!(per_tenant.len(), 4);
        for (tenant, count) in &per_tenant {
            assert!(*count > 100, "tenant {tenant} got only {count} jobs");
        }
    }

    #[test]
    fn unique_fraction_produces_never_repeating_tolerances() {
        let spec = TrafficSpec::smoke();
        let arrivals = spec.generate();
        let hot = spec.problems[0].epsilon;
        let jittered = arrivals
            .iter()
            .filter(|a| spec.problems.iter().all(|m| a.spec.epsilon != m.epsilon))
            .count();
        let frac = jittered as f64 / arrivals.len() as f64;
        assert!(
            (frac - spec.unique_fraction).abs() < 0.08,
            "jittered fraction {frac} far from configured {}",
            spec.unique_fraction
        );
        assert!(arrivals.iter().any(|a| a.spec.epsilon == hot));
    }

    #[test]
    fn splitmix_draws_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            let e = rng.exponential(2.0);
            assert!(e >= 0.0 && e.is_finite());
            let p = rng.pareto(1.5, 64.0);
            assert!((1.0..=64.0).contains(&p));
        }
        let idx = rng.weighted_index(&[0.0, 0.0, 1.0]);
        assert_eq!(idx, 2);
    }
}
