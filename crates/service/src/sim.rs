//! Virtual-clock execution of the whole service.
//!
//! [`run_virtual`] replays a traffic stream through admission, the DRR
//! dispatcher, the result cache and a simulated worker pool on a
//! discrete-event clock. Solve durations come from the kernels'
//! deterministic cost model, so every number in the resulting
//! [`LoadReport`] — latency percentiles, throughput, fairness, hit rate —
//! is a pure function of the [`LoadSpec`]. That is what lets CI gate the
//! service's behaviour exactly, with no wall-clock noise.
//!
//! Event ordering is fully specified: completions fire before arrivals at
//! equal times, and ties inside the heap break on a monotone sequence
//! number, so the replay is identical on every platform.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap};

use aiac_obs::{Layer, MetricDirection, MetricsRegistry, TraceSnapshot, Tracer, TrackRecorder};
use serde::{Deserialize, Serialize};

use crate::cache::{job_key, CachedSolve, ResultCache};
use crate::config::ServiceConfig;
use crate::drr::{Pending, TenantQueues};
use crate::job::{self, AdmissionError, TenantId};
use crate::traffic::TrafficSpec;

/// Everything a simulated load run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Service sizing.
    pub service: ServiceConfig,
    /// The traffic to replay.
    pub traffic: TrafficSpec,
    /// Virtual cost charged for answering a job from the cache.
    pub cache_hit_cost_secs: f64,
}

/// What one load run (virtual or real) produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Jobs the generator produced.
    pub generated: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs refused at admission, all causes.
    pub rejected: u64,
    /// Rejections due to a full tenant queue.
    pub rejected_tenant_full: u64,
    /// Rejections due to the global in-flight bound.
    pub rejected_in_flight: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Highest number of admitted-but-unfinished jobs observed.
    pub peak_in_flight: u64,
    /// The configured bound `peak_in_flight` must respect.
    pub in_flight_bound: u64,
    /// Time from first arrival to last completion.
    pub makespan_secs: f64,
    /// Per-job submission-to-completion latency, in seconds.
    pub latencies: Vec<f64>,
    /// Completed jobs per tenant.
    pub per_tenant_goodput: BTreeMap<TenantId, u64>,
    /// Jobs that passed admission per tenant.
    pub per_tenant_admitted: BTreeMap<TenantId, u64>,
    /// Submitted jobs per tenant (admitted or not).
    pub per_tenant_submitted: BTreeMap<TenantId, u64>,
}

/// Sentinel fairness ratio reported when a submitting tenant finished no
/// jobs at all. Finite (so `BenchRecord::validate` accepts it) but far
/// beyond any passing threshold.
pub const STARVED_FAIRNESS_RATIO: f64 = 1e9;

impl LoadReport {
    /// Completed jobs per second of makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_secs
        }
    }

    /// Max/min completed jobs over all tenants with at least one *admitted*
    /// job. 1.0 is perfectly fair; [`STARVED_FAIRNESS_RATIO`] flags a
    /// tenant that was admitted but finished nothing. Tenants whose every
    /// submission was shed at admission are excluded — the scheduler never
    /// saw their jobs, so their zero goodput is an admission artifact, not
    /// a DRR fairness defect (the rejection-rate gate owns that axis).
    pub fn fairness_ratio(&self) -> f64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (tenant, admitted) in &self.per_tenant_admitted {
            if *admitted == 0 {
                continue;
            }
            let done = self.per_tenant_goodput.get(tenant).copied().unwrap_or(0);
            min = min.min(done);
            max = max.max(done);
        }
        if min == u64::MAX {
            return 1.0;
        }
        if min == 0 {
            return STARVED_FAIRNESS_RATIO;
        }
        max as f64 / min as f64
    }

    /// Fraction of generated jobs refused at admission.
    pub fn rejection_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.rejected as f64 / self.generated as f64
        }
    }

    /// Cache hit fraction over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Jobs neither completed nor rejected — must be zero; anything else
    /// means the service dropped admitted work on the floor.
    pub fn lost(&self) -> u64 {
        self.generated
            .saturating_sub(self.completed)
            .saturating_sub(self.rejected)
    }

    /// The report's derived gauges and bookkeeping counters as a
    /// [`MetricsRegistry`] — the one list the bench harness renders metric
    /// samples from, so a new counter becomes a bench metric by being
    /// registered here.
    ///
    /// `deterministic` is true for the virtual-clock replay, whose every
    /// number is a pure function of the [`LoadSpec`]; the real pool's
    /// throughput and makespan are wall-clock and keep the `real_` names
    /// committed in the bench baselines. The bookkeeping counters (jobs,
    /// peak in-flight, cache traffic) replay identically on both cells and
    /// stay informational.
    pub fn metrics_registry(&self, deterministic: bool) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        if deterministic {
            registry.gauge(
                "throughput_jobs_per_sec",
                self.throughput(),
                true,
                MetricDirection::HigherIsBetter,
            );
            registry.gauge(
                "fairness_ratio",
                self.fairness_ratio(),
                true,
                MetricDirection::LowerIsBetter,
            );
            registry.gauge(
                "cache_hit_rate",
                self.cache_hit_rate(),
                true,
                MetricDirection::HigherIsBetter,
            );
            registry.gauge(
                "rejection_rate",
                self.rejection_rate(),
                true,
                MetricDirection::LowerIsBetter,
            );
            registry.gauge(
                "makespan_secs",
                self.makespan_secs,
                true,
                MetricDirection::LowerIsBetter,
            );
        } else {
            registry.gauge(
                "real_throughput_jobs_per_sec",
                self.throughput(),
                false,
                MetricDirection::HigherIsBetter,
            );
            registry.gauge(
                "real_makespan_secs",
                self.makespan_secs,
                false,
                MetricDirection::LowerIsBetter,
            );
        }
        for (name, value) in [
            ("jobs_generated", self.generated),
            ("jobs_completed", self.completed),
            ("jobs_rejected", self.rejected),
            ("peak_in_flight", self.peak_in_flight),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
        ] {
            registry.counter(name, value, true, MetricDirection::Informational);
        }
        registry
    }
}

/// Virtual seconds → the tracer's nanosecond timeline (a pure function of
/// the deterministic clock, so traced replays export bit-identically).
fn svc_ns(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

/// The per-tenant track for `tenant`, created on first use. One `String`
/// allocation per tenant per run — never on the per-event path. Shared
/// with the real pool's replay in [`crate::service`].
pub(crate) fn tenant_track<'t>(
    recorders: &'t mut BTreeMap<TenantId, TrackRecorder>,
    tracer: &Tracer,
    tenant: TenantId,
) -> &'t mut TrackRecorder {
    recorders.entry(tenant).or_insert_with(|| {
        tracer.recorder(Layer::Service, format!("tenant-{tenant}"), tenant as u64)
    })
}

/// A job executing on a simulated worker, keyed for the completion heap.
struct Executing {
    finish_secs: f64,
    seq: u64,
    tenant: TenantId,
    arrival_secs: f64,
}

impl PartialEq for Executing {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for Executing {}
impl PartialOrd for Executing {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Executing {
    /// Reversed on (time, seq) so the `BinaryHeap` max-heap pops the
    /// earliest completion first, with the sequence number as a total
    /// deterministic tie-break.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .finish_secs
            .total_cmp(&self.finish_secs)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Replays `spec` on the virtual clock and reports what happened.
pub fn run_virtual(spec: &LoadSpec) -> LoadReport {
    run_virtual_traced(spec).0
}

/// Like [`run_virtual`], also returning the event trace: one
/// [`Layer::Service`] track per tenant carrying job lifecycle spans,
/// admission verdicts, DRR dispatch turns and cache hits/misses on the
/// virtual clock. Empty (and free) when `spec.service.tracing` is off;
/// bit-identical across runs when it is on.
pub fn run_virtual_traced(spec: &LoadSpec) -> (LoadReport, TraceSnapshot) {
    spec.service
        .validate()
        .unwrap_or_else(|why| panic!("invalid service config: {why}"));
    let tracer = Tracer::new(spec.service.tracing);
    let traced = tracer.is_enabled();
    let mut recorders: BTreeMap<TenantId, TrackRecorder> = BTreeMap::new();
    let arrivals = spec.traffic.generate();
    let mut queues = TenantQueues::new(spec.service.tenant_queue_depth, spec.service.drr_quantum);
    let mut cache = ResultCache::new(spec.service.cache_capacity);
    let mut free_workers = spec.service.workers;
    let mut executing: BinaryHeap<Executing> = BinaryHeap::new();

    let mut in_flight = 0u64;
    let mut report = LoadReport {
        generated: arrivals.len() as u64,
        completed: 0,
        rejected: 0,
        rejected_tenant_full: 0,
        rejected_in_flight: 0,
        cache_hits: 0,
        cache_misses: 0,
        peak_in_flight: 0,
        in_flight_bound: spec.service.max_in_flight as u64,
        makespan_secs: 0.0,
        latencies: Vec::with_capacity(arrivals.len()),
        per_tenant_goodput: BTreeMap::new(),
        per_tenant_admitted: BTreeMap::new(),
        per_tenant_submitted: BTreeMap::new(),
    };

    let mut next_arrival = 0usize;
    let mut seq = 0u64;
    let mut now;

    loop {
        // Pick the next event; completions win ties so freed workers are
        // available to arrivals at the same instant.
        let completion_at = executing.peek().map(|e| e.finish_secs);
        let arrival_at = arrivals.get(next_arrival).map(|a| a.at_secs);
        let take_completion = match (completion_at, arrival_at) {
            (Some(c), Some(a)) => c <= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if take_completion {
            let Some(done) = executing.pop() else {
                break;
            };
            now = done.finish_secs;
            free_workers += 1;
            in_flight -= 1;
            report.completed += 1;
            report.latencies.push(now - done.arrival_secs);
            *report.per_tenant_goodput.entry(done.tenant).or_default() += 1;
            report.makespan_secs = now;
            if traced {
                tenant_track(&mut recorders, &tracer, done.tenant).span_complete(
                    "job",
                    svc_ns(done.arrival_secs),
                    svc_ns(now),
                    done.seq,
                );
            }
        } else {
            let arrival = &arrivals[next_arrival];
            next_arrival += 1;
            now = arrival.at_secs;
            *report
                .per_tenant_submitted
                .entry(arrival.spec.tenant)
                .or_default() += 1;
            if in_flight >= spec.service.max_in_flight as u64 {
                report.rejected += 1;
                report.rejected_in_flight += 1;
                if traced {
                    tenant_track(&mut recorders, &tracer, arrival.spec.tenant).instant_at(
                        "reject_in_flight",
                        svc_ns(now),
                        in_flight,
                    );
                }
            } else {
                let pending = Pending {
                    id: seq,
                    spec: arrival.spec.clone(),
                    arrival_secs: now,
                };
                match queues.enqueue(pending) {
                    Ok(()) => {
                        in_flight += 1;
                        report.peak_in_flight = report.peak_in_flight.max(in_flight);
                        *report
                            .per_tenant_admitted
                            .entry(arrival.spec.tenant)
                            .or_default() += 1;
                        if traced {
                            tenant_track(&mut recorders, &tracer, arrival.spec.tenant).instant_at(
                                "admit",
                                svc_ns(now),
                                in_flight,
                            );
                        }
                    }
                    Err(AdmissionError::TenantQueueFull { .. }) => {
                        report.rejected += 1;
                        report.rejected_tenant_full += 1;
                        if traced {
                            tenant_track(&mut recorders, &tracer, arrival.spec.tenant).instant_at(
                                "reject_tenant_full",
                                svc_ns(now),
                                in_flight,
                            );
                        }
                    }
                    Err(other) => unreachable!("virtual admission cannot fail with {other}"),
                }
            }
        }

        // Hand queued jobs to idle workers.
        while free_workers > 0 {
            let Some(pending) = queues.dispatch() else {
                break;
            };
            let key = job_key(&pending.spec);
            let hit = cache.lookup(key).is_some();
            if traced {
                let track = tenant_track(&mut recorders, &tracer, pending.spec.tenant);
                track.instant_at("drr_turn", svc_ns(now), pending.id);
                track.instant_at(
                    if hit { "cache_hit" } else { "cache_miss" },
                    svc_ns(now),
                    pending.id,
                );
            }
            let duration = if hit {
                spec.cache_hit_cost_secs
            } else {
                let outcome = job::solve(&pending.spec, None);
                let duration = outcome.virtual_cost_secs;
                cache.insert(
                    key,
                    CachedSolve {
                        converged: outcome.converged,
                        sweeps: outcome.sweeps,
                        final_residual: outcome.final_residual,
                        virtual_cost_secs: outcome.virtual_cost_secs,
                        solution: outcome.solution,
                    },
                );
                duration
            };
            free_workers -= 1;
            seq += 1;
            executing.push(Executing {
                finish_secs: now + duration,
                seq,
                tenant: pending.spec.tenant,
                arrival_secs: pending.arrival_secs,
            });
        }
    }

    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    drop(recorders);
    (report, tracer.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn smoke_spec() -> LoadSpec {
        LoadSpec {
            service: ServiceConfig::default(),
            traffic: TrafficSpec::smoke(),
            cache_hit_cost_secs: 1e-6,
        }
    }

    #[test]
    fn the_smoke_load_loses_nothing_and_stays_bounded() {
        let report = run_virtual(&smoke_spec());
        assert_eq!(report.lost(), 0, "admitted jobs must all complete");
        assert_eq!(report.generated, 1_800);
        assert!(report.peak_in_flight <= report.in_flight_bound);
        assert!(
            report.peak_in_flight >= 1_000,
            "the opening burst must pile up ≥ 1000 concurrent jobs, got {}",
            report.peak_in_flight
        );
        assert!(report.makespan_secs > 0.0);
        assert_eq!(report.latencies.len() as u64, report.completed);
        assert!(report.latencies.iter().all(|l| *l >= 0.0 && l.is_finite()));
    }

    #[test]
    fn replays_are_bit_identical() {
        let a = run_virtual(&smoke_spec());
        let b = run_virtual(&smoke_spec());
        assert_eq!(a, b);
    }

    #[test]
    fn the_cache_hits_on_repeated_structures() {
        let report = run_virtual(&smoke_spec());
        assert!(report.cache_hits > 0);
        assert!(report.cache_misses > 0);
        let rate = report.cache_hit_rate();
        assert!(
            (0.2..0.95).contains(&rate),
            "hit rate {rate} outside the plausible band"
        );
    }

    #[test]
    fn fairness_stays_near_one_for_uniform_tenants() {
        let report = run_virtual(&smoke_spec());
        let ratio = report.fairness_ratio();
        assert!(
            (1.0..2.0).contains(&ratio),
            "uniform tenants should finish near-equal work, ratio {ratio}"
        );
    }

    #[test]
    fn a_tiny_in_flight_bound_sheds_instead_of_growing() {
        let mut spec = smoke_spec();
        spec.service.max_in_flight = 8;
        spec.service.tenant_queue_depth = 4;
        let report = run_virtual(&spec);
        assert!(report.rejected > 0);
        assert!(report.peak_in_flight <= 8);
        assert_eq!(report.lost(), 0);
        assert!(report.rejection_rate() > 0.0);
    }

    #[test]
    fn starved_tenants_flag_the_sentinel_ratio() {
        // Tenant 1 was admitted but finished nothing: a scheduler defect.
        let report = LoadReport {
            generated: 10,
            completed: 5,
            rejected: 0,
            rejected_tenant_full: 0,
            rejected_in_flight: 0,
            cache_hits: 0,
            cache_misses: 5,
            peak_in_flight: 10,
            in_flight_bound: 16,
            makespan_secs: 1.0,
            latencies: vec![0.1; 5],
            per_tenant_goodput: [(0, 5)].into_iter().collect(),
            per_tenant_admitted: [(0, 5), (1, 5)].into_iter().collect(),
            per_tenant_submitted: [(0, 5), (1, 5)].into_iter().collect(),
        };
        assert_eq!(report.fairness_ratio(), STARVED_FAIRNESS_RATIO);
        assert!(report.fairness_ratio().is_finite());
    }

    #[test]
    fn tenants_shed_entirely_at_admission_do_not_skew_fairness() {
        // Tenant 1's every submission was rejected at the door; the
        // scheduler never saw its jobs, so fairness covers tenant 0 only.
        let report = LoadReport {
            generated: 10,
            completed: 5,
            rejected: 5,
            rejected_tenant_full: 5,
            rejected_in_flight: 0,
            cache_hits: 0,
            cache_misses: 5,
            peak_in_flight: 5,
            in_flight_bound: 8,
            makespan_secs: 1.0,
            latencies: vec![0.1; 5],
            per_tenant_goodput: [(0, 5)].into_iter().collect(),
            per_tenant_admitted: [(0, 5)].into_iter().collect(),
            per_tenant_submitted: [(0, 5), (1, 5)].into_iter().collect(),
        };
        assert_eq!(report.fairness_ratio(), 1.0);
    }

    #[test]
    fn traced_replays_are_bit_identical_and_carry_service_events() {
        let mut spec = smoke_spec();
        spec.service.tracing = aiac_obs::TraceConfig::on();
        let (report_a, trace_a) = run_virtual_traced(&spec);
        let (report_b, trace_b) = run_virtual_traced(&spec);
        assert_eq!(report_a, report_b);
        assert_eq!(trace_a, trace_b, "virtual-clock traces must reproduce");
        assert!(!trace_a.is_empty());
        assert_eq!(trace_a.layers(), vec![Layer::Service]);
        let names: std::collections::BTreeSet<&str> = trace_a
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        for required in ["job", "admit", "drr_turn", "cache_hit", "cache_miss"] {
            assert!(names.contains(required), "missing event {required:?}");
        }
        // the untraced run sees none of it
        let (_, off) = run_virtual_traced(&smoke_spec());
        assert!(off.is_empty());
    }

    #[test]
    fn the_metrics_registry_keeps_the_baseline_names() {
        let report = run_virtual(&smoke_spec());
        let virt = report.metrics_registry(true);
        let names: Vec<&str> = virt.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "throughput_jobs_per_sec",
                "fairness_ratio",
                "cache_hit_rate",
                "rejection_rate",
                "makespan_secs",
                "jobs_generated",
                "jobs_completed",
                "jobs_rejected",
                "peak_in_flight",
                "cache_hits",
                "cache_misses",
            ]
        );
        assert!(virt.get("throughput_jobs_per_sec").unwrap().deterministic);
        let real = report.metrics_registry(false);
        assert!(real.get("real_makespan_secs").is_some());
        assert!(
            !real
                .get("real_throughput_jobs_per_sec")
                .unwrap()
                .deterministic
        );
        assert!(real.get("jobs_generated").unwrap().deterministic);
    }

    #[test]
    fn load_specs_round_trip_through_json() {
        let spec = smoke_spec();
        let text = serde_json::to_string(&spec).unwrap();
        let back: LoadSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Admission keeps in-flight within the configured bound under
        /// arbitrary burst shapes, and no admitted job is ever lost.
        #[test]
        fn in_flight_never_exceeds_the_bound_under_bursts(
            seed in 0u64..1_000,
            max_in_flight in 4usize..64,
            depth in 2usize..32,
            initial_burst in 0usize..400,
            burst_prob in 0.0f64..0.5,
        ) {
            let service = ServiceConfig {
                workers: 3,
                max_in_flight,
                tenant_queue_depth: depth.min(max_in_flight),
                drr_quantum: 2,
                cache_capacity: 16,
                ..ServiceConfig::default()
            };
            let traffic = TrafficSpec {
                seed,
                jobs: 500,
                initial_burst,
                burst_prob,
                ..TrafficSpec::smoke()
            };
            let report = run_virtual(&LoadSpec {
                service,
                traffic,
                cache_hit_cost_secs: 1e-6,
            });
            prop_assert!(report.peak_in_flight <= max_in_flight as u64);
            prop_assert_eq!(report.lost(), 0);
            prop_assert_eq!(
                report.completed + report.rejected,
                report.generated
            );
        }
    }
}
