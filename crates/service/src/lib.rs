//! `aiac-service` — the multi-tenant solver service.
//!
//! The paper compared AIAC environments on how well they kept a
//! heterogeneous cluster busy; this crate asks the same question at the
//! serving layer: many concurrent solve jobs from many tenants competing
//! for one shared worker pool, instead of one solve owning the machine.
//!
//! ```text
//!  tenants ──► per-tenant queues ──► admission ──► DRR dispatcher
//!                                                      │
//!                        result cache ◄── shared worker pool (StealDeque)
//! ```
//!
//! The pieces:
//!
//! * [`job`] — the [`job::JobSpec`] / [`job::JobResult`] API, the
//!   [`job::ServiceProblem`] catalogue of solvable problems, and the typed
//!   [`job::AdmissionError`] backpressure every bound rejects with;
//! * [`config`] — [`config::ServiceConfig`] sizing (workers, in-flight
//!   bound, tenant queue depth, DRR quantum, cache capacity), derivable
//!   from an environment profile's `ServiceKnobs`;
//! * [`drr`] — bounded per-tenant queues drained by a deficit-round-robin
//!   dispatcher, so no backlogged tenant starves regardless of the arrival
//!   mix;
//! * [`cache`] — a bounded result cache keyed by the structural hash of
//!   (problem, tolerance), with hit/miss counters;
//! * [`traffic`] — a seeded open-loop generator (Poisson arrivals,
//!   heavy-tailed bursts, tenant weighting) producing reproducible job
//!   streams;
//! * [`sim`] — a virtual-clock discrete-event execution of the whole
//!   service, whose latency/throughput/fairness metrics are deterministic
//!   and therefore gateable in CI;
//! * [`service`] — the real front end: OS-thread workers stealing job
//!   tokens from a shared `aiac-core` [`aiac_core::runtime::StealDeque`],
//!   with per-job cancellation via [`aiac_core::cancel::CancelToken`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod drr;
pub mod job;
pub mod service;
pub mod sim;
pub mod traffic;

pub use cache::{job_key, CachedSolve, ResultCache};
pub use config::ServiceConfig;
pub use drr::{Pending, TenantQueues};
pub use job::{AdmissionError, JobId, JobResult, JobSpec, ServiceProblem, TenantId};
pub use service::{run_real_load, run_real_load_traced, JobTicket, SolverService};
pub use sim::{run_virtual, run_virtual_traced, LoadReport, LoadSpec};
pub use traffic::{Arrival, ProblemMix, SplitMix64, TrafficSpec};
