//! Jobs: what tenants submit, what the service returns, and how a job is
//! actually solved.
//!
//! A [`JobSpec`] names a tenant, a problem from the [`ServiceProblem`]
//! catalogue and a tolerance; the service answers with a [`JobResult`].
//! Admission failures are *values*, not panics: every bound in the service
//! rejects with a typed [`AdmissionError`] so callers can apply
//! backpressure (and so the `xtask analyze` R7 lint has something to
//! enforce).

use aiac_core::cancel::CancelToken;
use aiac_core::config::RunConfig;
use aiac_core::kernel::{BlockUpdate, DependencyView, InPlaceUpdate, IterativeKernel};
use aiac_core::runtime::SequentialRuntime;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};
use serde::{Deserialize, Serialize};

/// Identifies a tenant (a stream of jobs sharing one queue and one
/// fairness lane).
pub type TenantId = u32;

/// Identifies one submitted job, unique within a service instance.
pub type JobId = u64;

/// The catalogue of problems the service knows how to solve.
///
/// Variants are *structural* descriptions — two specs with equal variants
/// build bit-identical kernels, which is what makes the result cache's
/// structural hashing sound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceProblem {
    /// A ring of scalar contractions with a known fixed point — the cheap
    /// synthetic workload of the load tests.
    Ring {
        /// Number of blocks (one scalar unknown each).
        blocks: usize,
    },
    /// The paper's banded sparse linear system at a service-sized `n`.
    SparseLinear {
        /// Matrix dimension.
        n: usize,
        /// Number of blocks.
        blocks: usize,
    },
}

impl ServiceProblem {
    /// Builds the kernel this problem describes.
    pub fn build(&self) -> Box<dyn IterativeKernel> {
        match *self {
            ServiceProblem::Ring { blocks } => Box::new(ServiceRing::new(blocks)),
            ServiceProblem::SparseLinear { n, blocks } => Box::new(SparseLinearProblem::new(
                SparseLinearParams::paper_scaled(n, blocks),
            )),
        }
    }

    /// The structural fields the cache key hashes: a variant tag plus the
    /// size parameters. Equal fields ⇒ identical kernels.
    pub fn structural_fields(&self) -> [u64; 3] {
        match *self {
            ServiceProblem::Ring { blocks } => [1, blocks as u64, 0],
            ServiceProblem::SparseLinear { n, blocks } => [2, n as u64, blocks as u64],
        }
    }

    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceProblem::Ring { .. } => "ring",
            ServiceProblem::SparseLinear { .. } => "sparse-linear",
        }
    }
}

/// One solve request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// What to solve.
    pub problem: ServiceProblem,
    /// Residual threshold ε the solve runs to.
    pub epsilon: f64,
    /// Sweep budget (the job completes unconverged when exhausted).
    pub max_sweeps: usize,
}

/// One finished (or cancelled) solve, delivered to the submitting side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job this result answers.
    pub job: JobId,
    /// The tenant that submitted it.
    pub tenant: TenantId,
    /// Whether the solve reached its tolerance.
    pub converged: bool,
    /// Whether the job was cancelled before or during the solve.
    pub cancelled: bool,
    /// Whether the answer came from the result cache.
    pub from_cache: bool,
    /// Sweeps the solve ran (0 for cache hits and pre-solve cancellations).
    pub sweeps: u64,
    /// Final residual of the solve.
    pub final_residual: f64,
    /// Submission-to-completion latency, in (virtual or wall) seconds.
    pub latency_secs: f64,
    /// The assembled solution vector (empty for cancellations).
    pub solution: Vec<f64>,
}

/// Why the service refused a job at the door. Every variant is expected
/// under load — callers retry, shed, or slow down; the service never OOMs
/// and never panics on a full queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// The tenant's own queue is at its configured depth.
    TenantQueueFull {
        /// The tenant whose queue is full.
        tenant: TenantId,
        /// The configured per-tenant depth.
        depth: usize,
    },
    /// The global admitted-but-unfinished bound is reached.
    InFlightLimit {
        /// The configured global bound.
        limit: usize,
    },
    /// The service is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantQueueFull { tenant, depth } => {
                write!(f, "tenant {tenant}'s queue is full ({depth} jobs deep)")
            }
            AdmissionError::InFlightLimit { limit } => {
                write!(f, "service is at its in-flight limit of {limit} jobs")
            }
            AdmissionError::Closed => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What one actual solve produced — the unit the cache stores and both
/// execution modes (virtual and real) share.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Whether the solve reached its tolerance.
    pub converged: bool,
    /// Whether a cancel token stopped it early.
    pub cancelled: bool,
    /// Sweeps run.
    pub sweeps: u64,
    /// Final residual.
    pub final_residual: f64,
    /// The assembled solution.
    pub solution: Vec<f64>,
    /// Deterministic virtual duration of the solve: sweeps × the summed
    /// per-block iteration cost — the same cost model the simulated runtime
    /// charges.
    pub virtual_cost_secs: f64,
}

/// Solves a job on the sequential reference runtime, polling `cancel`
/// between sweeps. This is the execution kernel both the virtual-clock
/// simulation and the real worker pool call.
pub fn solve(spec: &JobSpec, cancel: Option<&CancelToken>) -> SolveOutcome {
    let kernel = spec.problem.build();
    let config = RunConfig::synchronous(spec.epsilon).with_max_iterations(spec.max_sweeps);
    let report = SequentialRuntime::new().run_with_cancel(kernel.as_ref(), &config, cancel);
    let sweeps = report.iterations.first().copied().unwrap_or(0);
    let per_sweep: f64 = (0..kernel.num_blocks())
        .map(|b| kernel.iteration_cost(b))
        .sum();
    SolveOutcome {
        converged: report.converged,
        cancelled: report.premature_stop,
        sweeps,
        final_residual: report.final_residual,
        solution: report.solution,
        virtual_cost_secs: sweeps as f64 * per_sweep,
    }
}

/// The load tests' synthetic workload: a ring of scalar blocks where block
/// `i` contracts towards a combination of its two neighbours. The spectral
/// radius is `A + B + C = 0.75 < 1`, so every component converges to the
/// known fixed point `D / (1 − A − B − C)`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceRing {
    /// Number of scalar blocks.
    pub blocks: usize,
}

impl ServiceRing {
    const A: f64 = 0.25;
    const B: f64 = 0.35;
    const C: f64 = 0.15;
    const D: f64 = 1.0;

    /// Creates a ring of `blocks` scalar blocks.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "the ring needs at least one block");
        Self { blocks }
    }

    /// The exact fixed point every component converges to.
    pub fn fixed_point(&self) -> f64 {
        Self::D / (1.0 - Self::A - Self::B - Self::C)
    }
}

impl IterativeKernel for ServiceRing {
    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn block_len(&self, _block: usize) -> usize {
        1
    }

    fn initial_block(&self, _block: usize) -> Vec<f64> {
        vec![0.0]
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        if self.blocks == 1 {
            return Vec::new();
        }
        let left = (block + self.blocks - 1) % self.blocks;
        let right = (block + 1) % self.blocks;
        if left == right {
            vec![left]
        } else {
            vec![left, right]
        }
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let mut values = vec![0.0];
        let update = self.update_block_into(block, local, others, &mut values);
        BlockUpdate {
            values,
            residual: update.residual,
        }
    }

    fn update_block_into(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        out: &mut [f64],
    ) -> InPlaceUpdate {
        let left = (block + self.blocks - 1) % self.blocks;
        let right = (block + 1) % self.blocks;
        let xl = others.get(left).map_or(0.0, |v| v[0]);
        let xr = others.get(right).map_or(0.0, |v| v[0]);
        let new = Self::A * xl + Self::B * local[0] + Self::C * xr + Self::D;
        out[0] = new;
        InPlaceUpdate {
            residual: (new - local[0]).abs(),
            copied: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_spec() -> JobSpec {
        JobSpec {
            tenant: 0,
            problem: ServiceProblem::Ring { blocks: 6 },
            epsilon: 1e-8,
            max_sweeps: 10_000,
        }
    }

    #[test]
    fn ring_jobs_solve_to_the_known_fixed_point() {
        let outcome = solve(&ring_spec(), None);
        assert!(outcome.converged);
        assert!(!outcome.cancelled);
        assert!(outcome.sweeps > 0);
        let fp = ServiceRing::new(6).fixed_point();
        assert!((fp - 4.0).abs() < 1e-12);
        for v in &outcome.solution {
            assert!((v - fp).abs() < 1e-6, "{v} vs {fp}");
        }
        assert!(outcome.virtual_cost_secs > 0.0);
    }

    #[test]
    fn sparse_jobs_route_through_the_paper_solver() {
        let spec = JobSpec {
            tenant: 1,
            problem: ServiceProblem::SparseLinear { n: 96, blocks: 3 },
            epsilon: 1e-6,
            max_sweeps: 10_000,
        };
        let outcome = solve(&spec, None);
        assert!(outcome.converged);
        assert_eq!(outcome.solution.len(), 96);
    }

    #[test]
    fn a_raised_token_cancels_the_solve() {
        let token = CancelToken::new();
        token.cancel();
        let outcome = solve(&ring_spec(), Some(&token));
        assert!(outcome.cancelled);
        assert!(!outcome.converged);
        assert_eq!(outcome.sweeps, 0);
    }

    #[test]
    fn sweep_budget_bounds_the_solve() {
        let spec = JobSpec {
            max_sweeps: 3,
            ..ring_spec()
        };
        let outcome = solve(&spec, None);
        assert!(!outcome.converged);
        assert_eq!(outcome.sweeps, 3);
    }

    #[test]
    fn structural_fields_separate_the_variants() {
        let a = ServiceProblem::Ring { blocks: 8 }.structural_fields();
        let b = ServiceProblem::SparseLinear { n: 8, blocks: 8 }.structural_fields();
        assert_ne!(a, b);
    }

    #[test]
    fn admission_errors_render_their_bounds() {
        let e = AdmissionError::TenantQueueFull {
            tenant: 7,
            depth: 64,
        };
        assert!(e.to_string().contains("tenant 7"));
        assert!(AdmissionError::InFlightLimit { limit: 4096 }
            .to_string()
            .contains("4096"));
    }

    #[test]
    fn specs_and_results_round_trip_through_json() {
        let spec = ring_spec();
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }
}
