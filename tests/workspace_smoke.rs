//! Workspace smoke test: the `aiac::prelude` facade re-exports compile and
//! the three runtimes (sequential, threaded, simulated) agree on a tiny
//! banded system. This is the first test to look at when a workspace-level
//! change (manifests, vendored shims, re-exports) breaks something.

use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::envs::threads::ProblemKind;
use aiac::prelude::*;
use aiac::solvers::sparse_linear::{MatrixShape, SparseLinearParams};
use approx::assert_abs_diff_eq;

fn tiny_banded_problem() -> SparseLinearProblem {
    SparseLinearProblem::new(SparseLinearParams {
        n: 120,
        sub_diagonals: 5,
        shape: MatrixShape::ContiguousBand,
        contraction: 0.7,
        gamma: 1.0,
        blocks: 3,
        seed: 7,
        reference_flops: 1.5e8,
        cost_scale: 1_000.0,
    })
}

/// Every name exported by `aiac::prelude` resolves and is usable.
#[test]
fn prelude_reexports_are_live() {
    let config: RunConfig = RunConfig::synchronous(1e-8);
    assert!(matches!(config.mode, ExecutionMode::Synchronous));

    let problem = tiny_banded_problem();
    let kernel: &dyn IterativeKernel = &problem;
    assert_eq!(kernel.num_blocks(), 3);

    let spec = BandedSpec::paper(64, 1);
    let matrix: CsrMatrix = spec.generate();
    assert_eq!(matrix.nrows(), 64);

    let partition = Partition::balanced(64, 4);
    assert_eq!(partition.parts(), 4);

    let grid: GridTopology = GridTopology::homogeneous_cluster(3);
    assert_eq!(grid.num_hosts(), 3);

    let env: EnvKind = EnvKind::Pm2;
    assert!(env.build().supports_async());
}

/// Sequential, threaded and simulated runtimes land on the same solution.
#[test]
fn all_three_runtimes_agree_on_a_tiny_banded_system() {
    let problem = tiny_banded_problem();

    let reference: RunReport =
        SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
    assert!(reference.converged, "sequential reference must converge");

    let threaded = ThreadedRuntime::new().run(&problem, &RunConfig::asynchronous(1e-10));
    assert!(threaded.converged, "threaded AIAC run must converge");

    let simulated = SimulatedRuntime::new(
        GridTopology::homogeneous_cluster(3),
        EnvKind::Pm2,
        ProblemKind::SparseLinear,
    )
    .run(&problem, &RunConfig::asynchronous(1e-10));
    assert!(
        simulated.report.converged,
        "simulated AIAC run must converge"
    );

    for (t, r) in threaded.solution.iter().zip(&reference.solution) {
        assert_abs_diff_eq!(*t, *r, epsilon = 1e-6);
    }
    for (s, r) in simulated.report.solution.iter().zip(&reference.solution) {
        assert_abs_diff_eq!(*s, *r, epsilon = 1e-6);
    }
}
