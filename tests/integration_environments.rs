//! Integration tests for the qualitative findings of the paper's comparison:
//! environment orderings, deployment/programming scores and the behaviour of
//! the platform presets.

use aiac::core::config::RunConfig;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::envs::deploy::ConnectionGraph;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

#[test]
fn qualitative_comparison_matches_section_5() {
    // Ease of programming: MPI/Mad easiest (Section 5.2).
    let mpi_mad = EnvKind::MpiMadeleine.build();
    for other in [EnvKind::Pm2, EnvKind::OmniOrb] {
        assert!(mpi_mad.ease_of_programming() >= other.build().ease_of_programming());
    }
    // Ease of deployment: OmniORB ahead (Section 5.3).
    let orb = EnvKind::OmniOrb.build();
    assert!(orb.deployment().ease_score() >= mpi_mad.deployment().ease_score());
    assert!(orb.deployment().ease_score() > EnvKind::Pm2.build().deployment().ease_score());
    assert_eq!(
        orb.deployment().connection_graph,
        ConnectionGraph::IncompleteAllowed
    );
    // Only the ORB needs a run-time service (the naming service).
    assert!(orb.deployment().needs_runtime_service);
    assert!(!EnvKind::Pm2.build().deployment().needs_runtime_service);
}

#[test]
fn environment_spread_is_modest_on_the_same_problem() {
    // "the tested environments globally have the same behavior with AIAC
    // algorithms": the async environments stay within a modest factor of
    // each other.
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(360, 6));
    let grid = GridTopology::ethernet_3_sites(6);
    let config = RunConfig::asynchronous(1e-7).with_streak(3);
    let times: Vec<f64> = EnvKind::ASYNC
        .iter()
        .map(|&env| {
            SimulatedRuntime::new(grid.clone(), env, ProblemKind::SparseLinear)
                .run(&problem, &config)
                .report
                .elapsed_secs
        })
        .collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 2.0,
        "async environments should stay within 2x of each other, got {times:?}"
    );
}

#[test]
fn adsl_links_slow_the_grid_down() {
    // Compare the synchronous version (whose iteration count is fixed by the
    // contraction factor) on the two distant-grid presets: the platform with
    // the asymmetric ADSL links must be slower at equal work.
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(360, 8));
    let config = RunConfig::synchronous(1e-6);
    let ethernet = SimulatedRuntime::new(
        GridTopology::ethernet_3_sites(8),
        EnvKind::MpiSync,
        ProblemKind::SparseLinear,
    )
    .run(&problem, &config);
    let adsl = SimulatedRuntime::new(
        GridTopology::ethernet_adsl_4_sites(8),
        EnvKind::MpiSync,
        ProblemKind::SparseLinear,
    )
    .run(&problem, &config);
    assert!(ethernet.report.converged && adsl.report.converged);
    assert!(
        adsl.report.elapsed_secs > ethernet.report.elapsed_secs,
        "ADSL grid ({:.1} s) should be slower than the Ethernet grid ({:.1} s)",
        adsl.report.elapsed_secs,
        ethernet.report.elapsed_secs
    );
}

#[test]
fn simulation_outcomes_are_reproducible() {
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(300, 6));
    let grid = GridTopology::ethernet_adsl_4_sites(6);
    let config = RunConfig::asynchronous(1e-7).with_streak(3);
    let run = || {
        SimulatedRuntime::new(grid.clone(), EnvKind::OmniOrb, ProblemKind::SparseLinear)
            .run(&problem, &config)
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.elapsed_secs, b.report.elapsed_secs);
    assert_eq!(a.report.iterations, b.report.iterations);
    assert_eq!(a.report.solution, b.report.solution);
    assert_eq!(a.network.messages, b.network.messages);
}

#[test]
fn prelude_exposes_the_common_types() {
    use aiac::prelude::*;
    // The facade is usable on its own for the common workflow.
    let problem = SparseLinearProblem::new(
        aiac::solvers::sparse_linear::SparseLinearParams::paper_scaled(120, 4),
    );
    let topo = GridTopology::homogeneous_cluster(4);
    let _ = (problem.num_blocks(), topo.num_hosts());
    let config = RunConfig {
        mode: ExecutionMode::Asynchronous,
        ..RunConfig::asynchronous(1e-6)
    };
    config.validate();
    let _ = EnvKind::ALL;
    let _report_type_is_reexported: Option<RunReport> = None;
}
