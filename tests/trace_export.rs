//! Locks down the observability plane's export determinism: a virtual-clock
//! simulated run traces on the simulation clock, so its Chrome trace-event
//! export must be *bit-identical* — across repetitions in this process and
//! against the golden file committed in `tests/golden/`.
//!
//! If an intentional change to the instrumentation or the exporter shifts
//! the output, regenerate the golden with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_export
//! ```

use aiac::core::config::RunConfig;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::obs::{to_chrome_json, validate_chrome_trace, Layer, TraceConfig};
use aiac::solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

const GOLDEN_PATH: &str = "tests/golden/simulated_trace.json";

/// The pinned workload: a small sparse system on the 3-site Ethernet grid
/// under the PM2 cost model, asynchronous, traced on the virtual clock.
fn traced_export() -> String {
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(60, 3));
    // A small ring keeps the golden file a few hundred events: overwrite
    // behaviour is deterministic (newest win, drops counted), so bounding
    // the rings does not cost reproducibility.
    let config = RunConfig::asynchronous(1e-6)
        .with_streak(3)
        .with_tracing(TraceConfig::on().with_ring_capacity(128));
    let runtime = SimulatedRuntime::new(
        GridTopology::ethernet_3_sites(3),
        EnvKind::Pm2,
        ProblemKind::SparseLinear,
    );
    let outcome = runtime.run(&problem, &config);
    assert!(
        outcome.report.converged,
        "the pinned workload must converge"
    );
    assert_eq!(
        outcome.obs_trace.layers(),
        vec![Layer::Netsim],
        "a simulated run traces netsim host timelines only"
    );
    to_chrome_json(&outcome.obs_trace)
}

#[test]
fn the_simulated_chrome_export_is_bit_identical_across_runs() {
    let first = traced_export();
    let second = traced_export();
    assert_eq!(
        first, second,
        "virtual-clock exports must not differ between repetitions"
    );
    let stats = validate_chrome_trace(&first).expect("the export must satisfy the trace schema");
    assert!(stats.events > 0, "the traced run must record events");
    assert!(stats.layers.contains("netsim"));
}

#[test]
fn the_simulated_chrome_export_matches_the_committed_golden() {
    let json = traced_export();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("golden file must be writable");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run UPDATE_GOLDEN=1 cargo test --test trace_export");
    assert_eq!(
        json, golden,
        "the export drifted from {GOLDEN_PATH}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test trace_export"
    );
}
