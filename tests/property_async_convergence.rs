//! Property-based integration tests: for randomly generated contractive
//! problems, the asynchronous runtimes must converge to the same fixed point
//! as the sequential reference, and the simulator must stay deterministic.

use aiac::core::config::{RunConfig, StealPolicy};
use aiac::core::depgraph::DependencyGraph;
use aiac::core::kernel::{BlockUpdate, DependencyView, IterativeKernel};
use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::sparse_linear::{MatrixShape, SparseLinearParams, SparseLinearProblem};
use proptest::prelude::*;

fn random_problem(n: usize, blocks: usize, contraction: f64, seed: u64) -> SparseLinearProblem {
    let params = SparseLinearParams {
        n,
        sub_diagonals: 10,
        shape: MatrixShape::ScatteredDiagonals,
        contraction,
        gamma: 1.0,
        blocks,
        seed,
        reference_flops: 1.5e8,
        cost_scale: 1_000.0,
    };
    SparseLinearProblem::new(params)
}

/// splitmix64 — tiny deterministic generator used to derive per-block
/// contraction weights from a proptest-supplied seed without pulling a rand
/// dependency into the facade tests.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A ring of scalar blocks with *per-block* random weights
/// `x_i ← a_i·x_{i−1} + b_i·x_i + c_i·x_{i+1} + d_i`, kept contractive
/// (`a_i + b_i + c_i ≤ 0.9`) so convergence to a unique fixed point is
/// guaranteed mathematically and any failure is an executor bug.
#[derive(Debug, Clone)]
struct RandomRing {
    weights: Vec<[f64; 4]>,
}

impl RandomRing {
    fn new(blocks: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ blocks as u64;
        let weights = (0..blocks)
            .map(|_| {
                // three weights in [0.05, 0.25] (sum ≤ 0.75 < 1), offset in [0.5, 2]
                let a = 0.05 + 0.20 * unit_f64(&mut state);
                let b = 0.05 + 0.20 * unit_f64(&mut state);
                let c = 0.05 + 0.20 * unit_f64(&mut state);
                let d = 0.5 + 1.5 * unit_f64(&mut state);
                [a, b, c, d]
            })
            .collect();
        Self { weights }
    }
}

impl IterativeKernel for RandomRing {
    fn num_blocks(&self) -> usize {
        self.weights.len()
    }

    fn block_len(&self, _block: usize) -> usize {
        1
    }

    fn initial_block(&self, _block: usize) -> Vec<f64> {
        vec![0.0]
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        let m = self.num_blocks();
        if m == 1 {
            return Vec::new();
        }
        let left = (block + m - 1) % m;
        let right = (block + 1) % m;
        if left == right {
            vec![left]
        } else {
            vec![left, right]
        }
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let m = self.num_blocks();
        let left = (block + m - 1) % m;
        let right = (block + 1) % m;
        let xl = others.get(left).map_or(0.0, |v| v[0]);
        let xr = others.get(right).map_or(0.0, |v| v[0]);
        let [a, b, c, d] = self.weights[block];
        let new = a * xl + b * local[0] + c * xr + d;
        BlockUpdate {
            residual: (new - local[0]).abs(),
            values: vec![new],
        }
    }
}

/// [`RandomRing`] with a deterministic, seeded pause schedule injected into
/// every update: each (block, local-call) pair draws from splitmix64 whether
/// the update stalls and for how long. This emulates the paper's
/// heterogeneous processors — some blocks compute slower in some iterations —
/// and drives the worker pool through interleavings a uniform-cost kernel
/// never exercises (stalled owners whose deques must be stolen from, late
/// publishes racing the convergence detector, parked thieves woken by a
/// slow block's requeue).
struct PausedRing {
    inner: RandomRing,
    schedule_seed: u64,
    calls: Vec<std::sync::atomic::AtomicU64>,
}

impl PausedRing {
    fn new(blocks: usize, weight_seed: u64, schedule_seed: u64) -> Self {
        Self {
            inner: RandomRing::new(blocks, weight_seed),
            schedule_seed,
            calls: (0..blocks)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        }
    }

    fn pause(&self, block: usize) {
        let call = self.calls[block].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut state = self
            .schedule_seed
            .wrapping_add((block as u64) << 32)
            .wrapping_add(call);
        let draw = splitmix64(&mut state);
        // Stall roughly a quarter of the updates for a few microseconds; the
        // rest run at full speed, so the schedule is heterogeneous rather
        // than uniformly slow and the tests stay fast.
        if draw.is_multiple_of(4) {
            std::thread::sleep(std::time::Duration::from_micros(1 + draw % 20));
        }
    }
}

impl IterativeKernel for PausedRing {
    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn block_len(&self, block: usize) -> usize {
        self.inner.block_len(block)
    }

    fn initial_block(&self, block: usize) -> Vec<f64> {
        self.inner.initial_block(block)
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        self.inner.dependencies(block)
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        self.pause(block);
        self.inner.update_block(block, local, others)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulated AIAC run agrees with the sequential reference for any
    /// contraction factor, block count and seed.
    #[test]
    fn prop_simulated_async_matches_sequential(
        blocks in 2usize..6,
        contraction in 0.3f64..0.92,
        seed in 0u64..50,
    ) {
        let problem = random_problem(180, blocks, contraction, seed);
        let reference = SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
        prop_assert!(reference.converged);

        let grid = GridTopology::ethernet_3_sites(blocks);
        let sim = SimulatedRuntime::new(grid, EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&problem, &RunConfig::asynchronous(1e-10).with_streak(3));
        prop_assert!(sim.report.converged);
        for (a, b) in sim.report.solution.iter().zip(&reference.solution) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// The threaded AIAC run also agrees with the sequential reference.
    #[test]
    fn prop_threaded_async_matches_sequential(
        blocks in 2usize..5,
        seed in 0u64..30,
    ) {
        let problem = random_problem(150, blocks, 0.8, seed);
        let reference = SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
        let report = ThreadedRuntime::new().run(&problem, &RunConfig::asynchronous(1e-10).with_streak(4));
        prop_assert!(report.converged);
        for (a, b) in report.solution.iter().zip(&reference.solution) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// The pooled asynchronous executor reaches the sequential fixed point —
    /// within tolerance — for any block count, worker-pool size and seed, and
    /// its in-flight data storage never exceeds one mailbox slot per
    /// dependency edge (the O(edges) bound of the coalescing design).
    #[test]
    fn prop_pooled_async_reaches_the_fixed_point_with_bounded_mailboxes(
        blocks in 1usize..65,
        workers in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let kernel = RandomRing::new(blocks, seed);
        let reference = SequentialRuntime::new()
            .run(&kernel, &RunConfig::synchronous(1e-12));
        prop_assert!(reference.converged);

        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(workers);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        prop_assert!(report.converged, "{blocks} blocks / {workers} workers");
        for (a, b) in report.solution.iter().zip(&reference.solution) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }

        let edges = DependencyGraph::from_kernel(&kernel).num_edges() as u64;
        prop_assert!(
            report.peak_mailbox_occupancy <= edges,
            "peak occupancy {} exceeded the edge count {}",
            report.peak_mailbox_occupancy,
            edges
        );
    }

    /// Under a seeded pause schedule the stealing pool loses no blocks: every
    /// block iterates at least once, the run still reaches the sequential
    /// fixed point, and in-flight data stays O(edges). Exercised with the
    /// locality bias both on and off, so a biased push can never strand a
    /// block on a stalled worker's deque.
    #[test]
    fn prop_stealing_pool_loses_no_blocks_under_pause_schedules(
        blocks in 1usize..13,
        workers in 1usize..5,
        seed in 0u64..1_000,
        schedule in 0u64..1_000,
    ) {
        let reference = SequentialRuntime::new()
            .run(&RandomRing::new(blocks, seed), &RunConfig::synchronous(1e-12));
        prop_assert!(reference.converged);

        for locality_bias in [true, false] {
            let kernel = PausedRing::new(blocks, seed, schedule);
            let config = RunConfig::asynchronous(1e-10)
                .with_streak(4)
                .with_num_workers(workers)
                .with_steal_policy(StealPolicy::WorkStealing)
                .with_locality_bias(locality_bias);
            let report = ThreadedRuntime::new().run(&kernel, &config);
            prop_assert!(
                report.converged,
                "bias {}: {} blocks / {} workers", locality_bias, blocks, workers
            );
            prop_assert_eq!(report.iterations.len(), blocks);
            for (block, &iters) in report.iterations.iter().enumerate() {
                prop_assert!(
                    iters > 0,
                    "block {} never ran (bias {})", block, locality_bias
                );
            }
            for (a, b) in report.solution.iter().zip(&reference.solution) {
                prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
            }
            let edges = DependencyGraph::from_kernel(&kernel).num_edges() as u64;
            prop_assert!(
                report.peak_mailbox_occupancy <= edges,
                "peak occupancy {} exceeded the edge count {}",
                report.peak_mailbox_occupancy,
                edges
            );
        }
    }

    /// The synchronous mode is a barrier-separated Jacobi sweep, so a pause
    /// schedule may change *when* blocks compute but never *what* they
    /// compute: for every pool size the iterates stay bit-identical to the
    /// sequential sweep and the scheduler counters stay structural zeros.
    #[test]
    fn prop_sync_pool_is_bit_identical_to_sequential_under_pauses(
        blocks in 1usize..10,
        seed in 0u64..1_000,
        schedule in 0u64..1_000,
    ) {
        let config = RunConfig::synchronous(1e-10);
        let reference = SequentialRuntime::new().run(&RandomRing::new(blocks, seed), &config);
        prop_assert!(reference.converged);

        for workers in 1usize..=4 {
            let kernel = PausedRing::new(blocks, seed, schedule);
            let report = ThreadedRuntime::new()
                .run(&kernel, &config.clone().with_num_workers(workers));
            prop_assert!(report.converged, "{} workers", workers);
            prop_assert_eq!(&report.solution, &reference.solution, "{} workers", workers);
            prop_assert_eq!(report.steals, 0);
            prop_assert_eq!(report.failed_steal_attempts, 0);
            prop_assert_eq!(report.local_pushes, 0);
            prop_assert_eq!(report.queue_wait_events, 0);
        }
    }

    /// Simulated execution time shrinks (or at least does not grow) when the
    /// same problem runs on a faster network.
    #[test]
    fn prop_faster_network_is_never_slower(seed in 0u64..20) {
        let problem = random_problem(180, 6, 0.85, seed);
        let config = RunConfig::asynchronous(1e-8).with_streak(3);
        let wan = SimulatedRuntime::new(
            GridTopology::ethernet_3_sites(6),
            EnvKind::MpiMadeleine,
            ProblemKind::SparseLinear,
        )
        .run(&problem, &config);
        let lan = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(6),
            EnvKind::MpiMadeleine,
            ProblemKind::SparseLinear,
        )
        .run(&problem, &config);
        prop_assert!(wan.report.converged && lan.report.converged);
        prop_assert!(lan.report.elapsed_secs <= wan.report.elapsed_secs * 1.05);
    }
}
