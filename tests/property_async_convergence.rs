//! Property-based integration tests: for randomly generated contractive
//! problems, the asynchronous runtimes must converge to the same fixed point
//! as the sequential reference, and the simulator must stay deterministic.

use aiac::core::config::RunConfig;
use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::sparse_linear::{MatrixShape, SparseLinearParams, SparseLinearProblem};
use proptest::prelude::*;

fn random_problem(n: usize, blocks: usize, contraction: f64, seed: u64) -> SparseLinearProblem {
    let params = SparseLinearParams {
        n,
        sub_diagonals: 10,
        shape: MatrixShape::ScatteredDiagonals,
        contraction,
        gamma: 1.0,
        blocks,
        seed,
        reference_flops: 1.5e8,
        cost_scale: 1_000.0,
    };
    SparseLinearProblem::new(params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulated AIAC run agrees with the sequential reference for any
    /// contraction factor, block count and seed.
    #[test]
    fn prop_simulated_async_matches_sequential(
        blocks in 2usize..6,
        contraction in 0.3f64..0.92,
        seed in 0u64..50,
    ) {
        let problem = random_problem(180, blocks, contraction, seed);
        let reference = SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
        prop_assert!(reference.converged);

        let grid = GridTopology::ethernet_3_sites(blocks);
        let sim = SimulatedRuntime::new(grid, EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&problem, &RunConfig::asynchronous(1e-10).with_streak(3));
        prop_assert!(sim.report.converged);
        for (a, b) in sim.report.solution.iter().zip(&reference.solution) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// The threaded AIAC run also agrees with the sequential reference.
    #[test]
    fn prop_threaded_async_matches_sequential(
        blocks in 2usize..5,
        seed in 0u64..30,
    ) {
        let problem = random_problem(150, blocks, 0.8, seed);
        let reference = SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
        let report = ThreadedRuntime::new().run(&problem, &RunConfig::asynchronous(1e-10).with_streak(4));
        prop_assert!(report.converged);
        for (a, b) in report.solution.iter().zip(&reference.solution) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// Simulated execution time shrinks (or at least does not grow) when the
    /// same problem runs on a faster network.
    #[test]
    fn prop_faster_network_is_never_slower(seed in 0u64..20) {
        let problem = random_problem(180, 6, 0.85, seed);
        let config = RunConfig::asynchronous(1e-8).with_streak(3);
        let wan = SimulatedRuntime::new(
            GridTopology::ethernet_3_sites(6),
            EnvKind::MpiMadeleine,
            ProblemKind::SparseLinear,
        )
        .run(&problem, &config);
        let lan = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(6),
            EnvKind::MpiMadeleine,
            ProblemKind::SparseLinear,
        )
        .run(&problem, &config);
        prop_assert!(wan.report.converged && lan.report.converged);
        prop_assert!(lan.report.elapsed_secs <= wan.report.elapsed_secs * 1.05);
    }
}
