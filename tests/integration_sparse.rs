//! Cross-crate integration tests for the sparse linear benchmark: the same
//! problem instance must be solved consistently by every runtime back-end and
//! every environment model.

use aiac::core::config::RunConfig;
use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn problem(blocks: usize) -> SparseLinearProblem {
    SparseLinearProblem::new(SparseLinearParams::paper_scaled(360, blocks))
}

#[test]
fn every_backend_agrees_with_the_exact_solution() {
    let p = problem(6);
    let sync_cfg = RunConfig::synchronous(1e-10);
    let async_cfg = RunConfig::asynchronous(1e-10).with_streak(4);

    let sequential = SequentialRuntime::new().run(&p, &sync_cfg);
    assert!(sequential.converged);
    assert!(p.error_of(&sequential.solution) < 1e-7);

    let threaded_sync = ThreadedRuntime::new().run(&p, &sync_cfg);
    assert!(threaded_sync.converged);
    assert_eq!(threaded_sync.solution, sequential.solution);

    let threaded_async = ThreadedRuntime::new().run(&p, &async_cfg);
    assert!(threaded_async.converged);
    assert!(p.error_of(&threaded_async.solution) < 1e-6);

    let grid = GridTopology::ethernet_3_sites(6);
    for env in EnvKind::ASYNC {
        let sim =
            SimulatedRuntime::new(grid.clone(), env, ProblemKind::SparseLinear).run(&p, &async_cfg);
        assert!(sim.report.converged, "{env} failed to converge");
        assert!(
            p.error_of(&sim.report.solution) < 1e-5,
            "{env} error {:.2e}",
            p.error_of(&sim.report.solution)
        );
    }
}

#[test]
fn simulated_async_beats_simulated_sync_on_the_papers_platform() {
    // The paper only runs the sparse linear problem on the distant Ethernet
    // grid ("it does not make sense to make this kind of computations on very
    // slow networks" for the ADSL platform, and the local-cluster figure uses
    // the non-linear problem), so that is the platform where the asynchronous
    // advantage is asserted; the other presets are exercised by the chemical
    // integration tests.
    let p = problem(6);
    {
        let grid = GridTopology::ethernet_3_sites(6);
        let sync = SimulatedRuntime::new(grid.clone(), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .run(&p, &RunConfig::synchronous(1e-8));
        let pm2 = SimulatedRuntime::new(grid.clone(), EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&p, &RunConfig::asynchronous(1e-8).with_streak(3));
        assert!(
            sync.report.converged && pm2.report.converged,
            "{}",
            grid.name()
        );
        assert!(
            pm2.report.elapsed_secs < sync.report.elapsed_secs,
            "{}: async {:.1} s should beat sync {:.1} s",
            grid.name(),
            pm2.report.elapsed_secs,
            sync.report.elapsed_secs
        );
    }
}

#[test]
fn asynchronous_iteration_counts_reflect_machine_heterogeneity() {
    let p = problem(6);
    let grid = GridTopology::local_hetero_cluster(6);
    let sim = SimulatedRuntime::new(grid, EnvKind::OmniOrb, ProblemKind::SparseLinear)
        .run(&p, &RunConfig::asynchronous(1e-8));
    // Host 2 (P4 2.4 GHz) is three times faster than host 0 (Duron 800); its
    // block must get through substantially more local iterations.
    let fast = sim.report.iterations[2];
    let slow = sim.report.iterations[0];
    assert!(
        fast > slow * 2,
        "expected the fast machine ({fast} iterations) to do at least twice the work of the slow one ({slow})"
    );
}

#[test]
fn message_volume_matches_the_dependency_structure() {
    let p = problem(8);
    let grid = GridTopology::ethernet_3_sites(8);
    let sim = SimulatedRuntime::new(grid, EnvKind::MpiMadeleine, ProblemKind::SparseLinear)
        .run(&p, &RunConfig::asynchronous(1e-7).with_streak(3));
    // all-to-all dependencies: every data message carries a positive payload
    assert!(sim.report.data_messages > 0);
    assert!(sim.report.data_bytes > sim.report.data_messages);
    // control traffic (state + stop) exists but stays far below data traffic
    assert!(sim.report.control_messages > 0);
    assert!(sim.report.control_messages < sim.report.data_messages);
}
