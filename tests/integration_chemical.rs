//! Cross-crate integration tests for the non-linear chemical benchmark.

use aiac::core::config::RunConfig;
use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::chemical::{ChemicalParams, ChemicalProblem};
use aiac::solvers::verify;

fn params(blocks: usize) -> ChemicalParams {
    let mut p = ChemicalParams::paper_scaled(12, 12, blocks);
    p.t_end = 360.0; // two implicit Euler steps keep the test quick
    p
}

#[test]
fn threaded_and_simulated_integrations_match_the_sequential_reference() {
    let reference = verify::chemical_reference(&ChemicalProblem::new(params(1)), 1e-10);

    // Threaded asynchronous integration, 3 strips.
    let problem = ChemicalProblem::new(params(3));
    let async_cfg = RunConfig::asynchronous(1e-10).with_streak(4);
    let runtime = ThreadedRuntime::new();
    let threaded = problem.solve_with(|kernel, _| runtime.run(kernel, &async_cfg));
    assert!(threaded.all_converged);
    assert!(
        verify::solutions_agree(&threaded.final_state, &reference.final_state, 1e-4),
        "threaded AIAC drifted from the reference"
    );

    // Simulated asynchronous integration on the ADSL grid, 4 strips.
    let problem = ChemicalProblem::new(params(4));
    let grid = GridTopology::ethernet_adsl_4_sites(4);
    let sim_runtime = SimulatedRuntime::new(grid, EnvKind::Pm2, ProblemKind::NonLinearChemical);
    let simulated = problem.solve_with(|kernel, _| sim_runtime.run(kernel, &async_cfg).report);
    assert!(simulated.all_converged);
    assert!(
        verify::solutions_agree(&simulated.final_state, &reference.final_state, 1e-4),
        "simulated AIAC drifted from the reference"
    );
    assert!(simulated.total_data_messages > 0);
}

#[test]
fn per_time_step_barrier_is_respected() {
    // Each step's kernel must start from the previous step's solution: run
    // two steps manually and compare against solve_with.
    let problem = ChemicalProblem::new(params(2));
    let cfg = RunConfig::synchronous(1e-9);
    let runtime = SequentialRuntime::new();

    let mut y = problem.initial_state();
    for step in 0..problem.num_steps() {
        let kernel = problem.step_kernel(y.clone(), step);
        y = runtime.run(&kernel, &cfg).solution;
    }
    let combined = problem.solve_with(|kernel, _| runtime.run(kernel, &cfg));
    assert_eq!(combined.final_state, y);
}

#[test]
fn concentrations_remain_physical_across_backends() {
    let problem = ChemicalProblem::new(params(3));
    let cfg = RunConfig::asynchronous(1e-9).with_streak(3);
    let runtime = ThreadedRuntime::new();
    let solution = problem.solve_with(|kernel, _| runtime.run(kernel, &cfg));
    assert!(solution
        .final_state
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0));
    // species 2 stays around its 1e12 scale
    let g = problem.geometry();
    let c2 = solution.final_state[g.index(1, 6, 6)];
    assert!(c2 > 1e11 && c2 < 1e13, "c2 = {c2:e}");
}

#[test]
fn simulated_async_chemical_beats_sync_on_the_distant_grid() {
    let p = {
        let mut p = ChemicalParams::paper_scaled(12, 12, 12);
        p.t_end = 360.0;
        p
    };
    let problem = ChemicalProblem::new(p.clone());
    let grid = GridTopology::ethernet_3_sites(12);

    let sync_rt = SimulatedRuntime::new(
        grid.clone(),
        EnvKind::MpiSync,
        ProblemKind::NonLinearChemical,
    );
    let sync_cfg = RunConfig::synchronous(p.epsilon);
    let sync = problem.solve_with(|k, _| sync_rt.run(k, &sync_cfg).report);

    let async_rt =
        SimulatedRuntime::new(grid, EnvKind::MpiMadeleine, ProblemKind::NonLinearChemical);
    let async_cfg = RunConfig::asynchronous(p.epsilon).with_streak(3);
    let asynchronous = problem.solve_with(|k, _| async_rt.run(k, &async_cfg).report);

    assert!(sync.all_converged && asynchronous.all_converged);
    assert!(
        asynchronous.total_elapsed_secs < sync.total_elapsed_secs,
        "async {:.1} s should beat sync {:.1} s",
        asynchronous.total_elapsed_secs,
        sync.total_elapsed_secs
    );
}
