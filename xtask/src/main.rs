//! `cargo xtask` — repo automation entry point.

mod analyze;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("analyze") => analyze::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask analyze [--self-test]");
            2
        }
    };
    std::process::exit(code);
}
