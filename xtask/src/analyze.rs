//! `cargo xtask analyze` — static invariant lints for the lock-free data
//! plane, plus a seeded-mutation self-test.
//!
//! The model checker in `crates/check` proves the *dynamic* properties of
//! the mailbox and deque; this pass pins the *static* discipline those
//! proofs rest on. Each rule is a token-level check (a tiny lexer strips
//! comments and string literals first, so prose mentioning `unsafe` or
//! `Ordering::Relaxed` never trips a lint):
//!
//! * **R1 `unsafe-allowlist`** — every `unsafe` keyword in `crates/core/src`
//!   lives in `runtime/mailbox.rs`, whose block count is pinned exactly
//!   (new unsafe code must update the pin here, in review); the crate root
//!   keeps `#![deny(unsafe_code)]` and the mailbox carries exactly one
//!   scoped `#![allow(unsafe_code)]`.
//! * **R2 `ordering-annotated`** — every `Ordering::` site in non-test core
//!   code carries a `// ord:` justification on the same or previous line,
//!   and the total site count is pinned (so orderings cannot be added or
//!   removed without the diff touching this file).
//! * **R3 `relaxed-is-stats-only`** — `Ordering::Relaxed` is legal only for
//!   statistics counters: its `// ord:` justification must say "stat".
//! * **R4 `no-sleep-no-blind-spin`** — `crates/core/src/runtime` non-test
//!   code never calls `thread::sleep`, and every `spin_loop` carries a
//!   `// spin:` justification (bounded, with an explained exit condition).
//! * **R5 `no-silent-copies`** — `.clone()` / `.to_vec()` in the data-plane
//!   files (`mailbox.rs`, `deque.rs`, `threaded.rs`) require a `// copy:`
//!   justification; payloads move by refcount, not memcpy.
//! * **R6 `atomics-via-facade`** — the data-plane files never name
//!   `std::sync::atomic` directly; they import through `runtime::sync` so
//!   the bounded model checker can instrument them under `--cfg aiac_check`.
//! * **R7 `no-unwrap-on-queue-paths`** — non-test code in
//!   `crates/service/src` never calls `.unwrap()` / `.expect(...)` on a line
//!   that touches a job-queue send/receive path (send, recv, enqueue,
//!   dequeue, submit, push_back, pop_front): admission and delivery failures
//!   must propagate as typed backpressure errors, not panics.
//! * **R8 `static-trace-events`** — trace emits in the data-plane files
//!   (`span_begin`/`span_end`/`span_complete`/`instant`/`counter` calls)
//!   never allocate on the same line (`format!`, `.to_string()`,
//!   `String::from`, `.to_owned()`): event names are `&'static str` by
//!   construction, and the only tolerated allocation is the once-per-worker
//!   track name passed to `tracer.recorder(...)`, which is not an emit.
//!
//! `cargo xtask analyze --self-test` seeds one bug per class into a scratch
//! copy of the tree — a weakened memory ordering, a dropped reclamation, a
//! lost-element deque edit, an unjustified copy, a stray `unsafe`, a deleted
//! annotation, a panicking queue path, an allocating hot-path trace emit —
//! and asserts the matching layer (model checker or lint) catches each one,
//! then restores the copy and asserts it is green again.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Pinned number of `unsafe` blocks in `crates/core/src/runtime/mailbox.rs`
/// (the only file on the allowlist). Grow this only together with a new
/// SAFETY comment in that file.
const UNSAFE_BLOCK_PIN: usize = 4;

/// Pinned number of non-test `Ordering::` sites across `crates/core/src`.
/// Adding or removing an atomic-ordering decision must touch this constant,
/// making every such change visible in review.
const ORDERING_SITE_PIN: usize = 73;

/// Files whose atomics are the model-checked data plane: silent copies and
/// direct `std::sync::atomic` imports are forbidden here.
const DATA_PLANE: [&str; 3] = [
    "crates/core/src/runtime/mailbox.rs",
    "crates/core/src/runtime/deque.rs",
    "crates/core/src/runtime/threaded.rs",
];

const MAILBOX: &str = "crates/core/src/runtime/mailbox.rs";
const CORE_SRC: &str = "crates/core/src";
const SERVICE_SRC: &str = "crates/service/src";

pub fn run(args: &[String]) -> i32 {
    let mut self_test = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cargo xtask analyze [--self-test] [--root PATH]");
                return 2;
            }
        }
    }
    let root = match root.map(Ok).unwrap_or_else(workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let violations = match lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if violations.is_empty() {
        println!(
            "xtask analyze: all rules clean (unsafe pin {UNSAFE_BLOCK_PIN}, ordering pin {ORDERING_SITE_PIN})"
        );
    } else {
        for v in &violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
        }
        eprintln!("xtask analyze: {} violation(s)", violations.len());
        return 1;
    }

    if self_test {
        if let Err(e) = run_self_test(&root) {
            eprintln!("self-test FAILED: {e}");
            return 1;
        }
        println!("xtask analyze --self-test: every seeded mutation was caught");
    }
    0
}

/// Walks upward from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

/// One scanned source file: the raw lines (annotations live in comments)
/// and the comment/string-blanked lines (tokens live in code), plus the
/// index of the first test-module line (`usize::MAX` when there is none —
/// the repo keeps unit tests in a trailing `#[cfg(test)] mod`).
struct FileView {
    raw: Vec<String>,
    code: Vec<String>,
    test_start: usize,
}

impl FileView {
    fn load(root: &Path, rel: &str) -> Result<Self, String> {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let masked = mask_code(&src);
        let raw: Vec<String> = src.lines().map(str::to_owned).collect();
        let code: Vec<String> = masked.lines().map(str::to_owned).collect();
        let test_start = raw
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        Ok(Self {
            raw,
            code,
            test_start,
        })
    }

    /// True when line `i` (0-based) sits inside the trailing test module.
    fn is_test(&self, i: usize) -> bool {
        i >= self.test_start
    }

    /// The justification text for a site on line `i`: the tail of a `tag`
    /// comment on the same line, or a `tag` comment anywhere in the
    /// contiguous block of `//` comment lines directly above (multi-line
    /// justifications wrap; continuation lines are plain `//`).
    fn annotation(&self, i: usize, tag: &str) -> Option<String> {
        if let Some(pos) = self.raw[i].find(tag) {
            return Some(self.raw[i][pos..].to_owned());
        }
        let mut j = i;
        while j > 0 && self.raw[j - 1].trim_start().starts_with("//") {
            j -= 1;
            if self.raw[j].trim_start().starts_with(tag) {
                return Some(self.raw[j..i].join("\n"));
            }
        }
        None
    }
}

/// Replaces every comment, string literal, and char literal in `src` with
/// spaces (newlines preserved), so substring/token searches over the result
/// only ever hit code.
fn mask_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // line comment
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // (nested) block comment
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // raw (and byte-raw) string: r"..." / r#"..."# / br#"..."#
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let hashes = j - (start + 1);
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // plain (and byte) string
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    if i + 1 < b.len() {
                        out.push(blank(b[i + 1]));
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let next = b.get(i + 1);
            let is_escape = next == Some(&'\\');
            let closes = b.get(i + 2) == Some(&'\'');
            if is_escape || (next.is_some() && closes) {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            // a lifetime: fall through, identifiers are code
        }
        out.push(c);
        i += 1;
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets (per line) where `token` appears as a whole identifier.
fn token_sites(line: &str, token: &str) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap());
        let after_ok = line[at + token.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            sites.push(at);
        }
        from = at + token.len();
    }
    sites
}

/// Every `.rs` file under `dir`, as paths relative to `root`.
fn rust_files(root: &Path, dir: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("{}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn lint_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let mut views = BTreeMap::new();
    for rel in rust_files(root, CORE_SRC)? {
        let view = FileView::load(root, &rel)?;
        views.insert(rel, view);
    }

    rule_unsafe_allowlist(&views, &mut violations);
    rule_ordering_annotated(&views, &mut violations);
    rule_no_sleep_no_blind_spin(&views, &mut violations);
    rule_no_silent_copies(&views, &mut violations);
    rule_atomics_via_facade(&views, &mut violations);
    rule_static_trace_events(&views, &mut violations);

    // The service crate gets its own view map: feeding it into `views` would
    // perturb the core-only unsafe and ordering pins of R1/R2.
    let mut service_views = BTreeMap::new();
    for rel in rust_files(root, SERVICE_SRC)? {
        let view = FileView::load(root, &rel)?;
        service_views.insert(rel, view);
    }
    rule_no_unwrap_on_queue_paths(&service_views, &mut violations);
    Ok(violations)
}

/// R1: `unsafe` only in the mailbox, with a pinned block count and the
/// scoped-allow / crate-deny pair intact.
fn rule_unsafe_allowlist(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    let mut mailbox_count = 0usize;
    for (rel, view) in views {
        for (i, line) in view.code.iter().enumerate() {
            for _ in token_sites(line, "unsafe") {
                if rel == MAILBOX {
                    mailbox_count += 1;
                } else {
                    out.push(Violation {
                        file: rel.clone(),
                        line: i + 1,
                        rule: "R1",
                        msg: "`unsafe` outside the mailbox allowlist".into(),
                    });
                }
            }
        }
    }
    if mailbox_count != UNSAFE_BLOCK_PIN {
        out.push(Violation {
            file: MAILBOX.into(),
            line: 1,
            rule: "R1",
            msg: format!(
                "unsafe block count drifted: found {mailbox_count}, pinned {UNSAFE_BLOCK_PIN}"
            ),
        });
    }
    if let Some(lib) = views.get("crates/core/src/lib.rs") {
        if !lib.raw.iter().any(|l| l.contains("#![deny(unsafe_code)]")) {
            out.push(Violation {
                file: "crates/core/src/lib.rs".into(),
                line: 1,
                rule: "R1",
                msg: "crate root lost `#![deny(unsafe_code)]`".into(),
            });
        }
    }
    if let Some(mb) = views.get(MAILBOX) {
        let allows = mb
            .raw
            .iter()
            .filter(|l| l.contains("#![allow(unsafe_code)]"))
            .count();
        if allows != 1 {
            out.push(Violation {
                file: MAILBOX.into(),
                line: 1,
                rule: "R1",
                msg: format!(
                    "expected exactly one scoped `#![allow(unsafe_code)]`, found {allows}"
                ),
            });
        }
    }
}

/// R2 + R3: every non-test `Ordering::` site is `// ord:`-annotated (count
/// pinned), and `Relaxed` sites justify themselves as statistics.
fn rule_ordering_annotated(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    let mut total = 0usize;
    for (rel, view) in views {
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            for at in token_sites(line, "Ordering") {
                if !line[at + "Ordering".len()..].starts_with("::") {
                    continue;
                }
                total += 1;
                match view.annotation(i, "// ord:") {
                    None => out.push(Violation {
                        file: rel.clone(),
                        line: i + 1,
                        rule: "R2",
                        msg: "`Ordering::` site without a `// ord:` justification".into(),
                    }),
                    Some(text) => {
                        let relaxed = line[at..].starts_with("Ordering::Relaxed");
                        if relaxed && !text.contains("stat") {
                            out.push(Violation {
                                file: rel.clone(),
                                line: i + 1,
                                rule: "R3",
                                msg: "`Ordering::Relaxed` outside a statistics counter \
                                      (justification must say `stat`)"
                                    .into(),
                            });
                        }
                    }
                }
            }
        }
    }
    if total != ORDERING_SITE_PIN {
        out.push(Violation {
            file: CORE_SRC.into(),
            line: 1,
            rule: "R2",
            msg: format!(
                "ordering site count drifted: found {total}, pinned {ORDERING_SITE_PIN} \
                 (update the pin together with the new `// ord:` justification)"
            ),
        });
    }
}

/// R4: the runtime never sleeps, and never spins without a justification.
fn rule_no_sleep_no_blind_spin(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    for (rel, view) in views {
        if !rel.starts_with("crates/core/src/runtime/") {
            continue;
        }
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            if line.contains("thread::sleep") {
                out.push(Violation {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "R4",
                    msg: "`thread::sleep` in the runtime (park on a condvar instead)".into(),
                });
            }
            if !token_sites(line, "spin_loop").is_empty()
                && view.annotation(i, "// spin:").is_none()
            {
                out.push(Violation {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "R4",
                    msg: "`spin_loop` without a `// spin:` bound justification".into(),
                });
            }
        }
    }
}

/// R5: data-plane clones/copies must be justified.
fn rule_no_silent_copies(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    for rel in DATA_PLANE {
        let Some(view) = views.get(rel) else { continue };
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            if (line.contains(".clone()") || line.contains(".to_vec()"))
                && view.annotation(i, "// copy:").is_none()
            {
                out.push(Violation {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "R5",
                    msg: "unjustified copy on a data-plane path (add `// copy:` or move the \
                          data by refcount)"
                        .into(),
                });
            }
        }
    }
}

/// R6: the data plane imports atomics through the `runtime::sync` facade.
fn rule_atomics_via_facade(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    for rel in DATA_PLANE {
        let Some(view) = views.get(rel) else { continue };
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            if line.contains("std::sync::atomic") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "R6",
                    msg: "direct `std::sync::atomic` use bypasses the model-checker facade \
                          (import from `crate::runtime::sync`)"
                        .into(),
                });
            }
        }
    }
}

/// R8: data-plane trace emits never allocate. The observability crate makes
/// event names `&'static str` by construction; this rule keeps the *call
/// sites* honest too — no `format!`-built name leaked to `'static`, no
/// `.to_string()` feeding an argument, on any line that emits an event in
/// the hot files. The once-per-worker track name handed to
/// `tracer.recorder(...)` may allocate; `recorder` is not an emit token.
fn rule_static_trace_events(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    const EMIT_TOKENS: [&str; 7] = [
        ".span_begin(",
        ".span_end(",
        ".span_complete(",
        ".instant(",
        ".instant_at(",
        ".counter(",
        ".counter_at(",
    ];
    const ALLOC_TOKENS: [&str; 4] = ["format!", ".to_string()", "String::from", ".to_owned()"];
    for rel in DATA_PLANE {
        let Some(view) = views.get(rel) else { continue };
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            if EMIT_TOKENS.iter().any(|t| line.contains(t))
                && ALLOC_TOKENS.iter().any(|t| line.contains(t))
            {
                out.push(Violation {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "R8",
                    msg: "allocating trace emit on a data-plane path (event names are \
                          static by construction; build dynamic context into the `arg`, \
                          not the name)"
                        .into(),
                });
            }
        }
    }
}

/// R7: the service's job-queue send/receive paths never panic on failure.
/// A full tenant queue, a closed results channel or a saturated pool are
/// expected conditions under load; they must surface as typed backpressure
/// (`AdmissionError`), never as `.unwrap()` / `.expect(...)`.
fn rule_no_unwrap_on_queue_paths(views: &BTreeMap<String, FileView>, out: &mut Vec<Violation>) {
    const QUEUE_TOKENS: [&str; 7] = [
        "send",
        "recv",
        "enqueue",
        "dequeue",
        "submit",
        "push_back",
        "pop_front",
    ];
    for (rel, view) in views {
        for (i, line) in view.code.iter().enumerate() {
            if view.is_test(i) {
                continue;
            }
            if !line.contains(".unwrap()") && !line.contains(".expect(") {
                continue;
            }
            if QUEUE_TOKENS
                .iter()
                .any(|t| !token_sites(line, t).is_empty())
            {
                out.push(Violation {
                    file: rel.clone(),
                    line: i + 1,
                    rule: "R7",
                    msg: "`.unwrap()`/`.expect()` on a job-queue send/recv path \
                          (propagate a typed backpressure error instead)"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation self-test
// ---------------------------------------------------------------------------

/// What is expected to catch a seeded mutation.
enum Catcher {
    /// `lint_tree` must report at least one violation of this rule.
    Lint(&'static str),
    /// This model-check harness (test file + filter) must fail under
    /// `--cfg aiac_check`.
    Harness {
        test_file: &'static str,
        filter: &'static str,
    },
}

struct Mutation {
    name: &'static str,
    file: &'static str,
    find: &'static str,
    replace: &'static str,
    catcher: Catcher,
}

fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "M1 weakened-ordering (mailbox publish swap AcqRel -> Relaxed)",
            file: MAILBOX,
            find: "let displaced = slot.ptr.swap(fresh, Ordering::AcqRel);",
            replace: "let displaced = slot.ptr.swap(fresh, Ordering::Relaxed);",
            catcher: Catcher::Harness {
                test_file: "mailbox_model",
                filter: "publish_take_race_is_exhaustively_clean",
            },
        },
        Mutation {
            name: "M2 dropped-reclamation (mailbox Drop leaks in-flight envelopes)",
            file: MAILBOX,
            find: "drop(unsafe { Box::from_raw(p) });",
            replace: "let _ = p;",
            catcher: Catcher::Harness {
                test_file: "mailbox_model",
                filter: "drop_with_inflight_envelopes_never_leaks",
            },
        },
        Mutation {
            name: "M3 duplicated-element (deque pop keeps the last element it lost)",
            file: "crates/core/src/runtime/deque.rs",
            find: ".is_ok();",
            replace: ".is_ok() || true;",
            catcher: Catcher::Harness {
                test_file: "deque_model",
                filter: "owner_pop_vs_concurrent_steal_is_exactly_once",
            },
        },
        Mutation {
            name: "M4 unjustified-copy (threaded retirement snapshot loses its `// copy:`)",
            file: "crates/core/src/runtime/threaded.rs",
            find: "// copy: retirement snapshot — the block's values leave the runtime exactly once, at finish\n",
            replace: "",
            catcher: Catcher::Lint("R5"),
        },
        Mutation {
            name: "M5 stray-unsafe (deque grows an unsafe block outside the allowlist)",
            file: "crates/core/src/runtime/deque.rs",
            find: "pub fn capacity(&self) -> usize {",
            replace: "pub fn capacity(&self) -> usize { let _ = unsafe { std::ptr::read(&self.mask) };",
            catcher: Catcher::Lint("R1"),
        },
        Mutation {
            name: "M6 deleted-annotation (mailbox publish counter loses its `// ord:`)",
            file: MAILBOX,
            find: "// ord: stat counter — publish count is telemetry only\n",
            replace: "",
            catcher: Catcher::Lint("R2"),
        },
        Mutation {
            name: "M7 panicking-queue-path (service result delivery unwraps the send)",
            file: "crates/service/src/service.rs",
            find: "let _ = self.results_tx.send(result);",
            replace: "self.results_tx.send(result).unwrap();",
            catcher: Catcher::Lint("R7"),
        },
        Mutation {
            name: "M8 allocating-trace-emit (publish instant builds its name with format!)",
            file: "crates/core/src/runtime/threaded.rs",
            find: "rec.instant(\"publish\", block as u64);",
            replace: "rec.instant(format!(\"publish-{block}\").leak(), block as u64);",
            catcher: Catcher::Lint("R8"),
        },
    ]
}

fn run_self_test(root: &Path) -> Result<(), String> {
    // The scratch copy lives under target/ so it is excluded from copying
    // (and from the lints, which only look at crates/core/src).
    let stage = root.join("target").join("xtask-selftest");
    let tree = stage.join("tree");
    let shared_target = stage.join("target");
    if tree.exists() {
        fs::remove_dir_all(&tree).map_err(|e| format!("clearing scratch tree: {e}"))?;
    }
    println!("self-test: copying the tree to {}", tree.display());
    copy_tree(root, &tree)?;

    // Baseline: the pristine copy must pass both layers.
    let clean = lint_tree(&tree)?;
    if !clean.is_empty() {
        return Err(format!("pristine copy fails lints: {:?}", clean[0]));
    }
    println!("self-test: baseline model-check run (pristine copy must be green)");
    let both = ["--test", "mailbox_model", "--test", "deque_model"];
    if !harness_passes(&tree, &shared_target, &both)? {
        return Err("pristine copy fails the model-check harnesses".into());
    }

    for m in mutations() {
        println!("self-test: seeding {}", m.name);
        let path = tree.join(m.file);
        let original = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", m.file))?;
        let hits = original.matches(m.find).count();
        if hits != 1 {
            return Err(format!(
                "{}: mutation anchor {:?} matched {hits} times (expected 1)",
                m.name, m.find
            ));
        }
        fs::write(&path, original.replacen(m.find, m.replace, 1))
            .map_err(|e| format!("{}: {e}", m.file))?;

        let caught = match &m.catcher {
            Catcher::Lint(rule) => {
                let found = lint_tree(&tree)?;
                let hit = found.iter().any(|v| v.rule == *rule);
                if !hit {
                    println!("  lints reported: {found:?}");
                }
                hit
            }
            Catcher::Harness { test_file, filter } => {
                !harness_passes(&tree, &shared_target, &["--test", test_file, filter])?
            }
        };
        fs::write(&path, original).map_err(|e| format!("restoring {}: {e}", m.file))?;
        if !caught {
            return Err(format!("{} was NOT caught", m.name));
        }
        println!("  caught");
    }

    // Restored tree must be green again: both layers, one more time.
    let clean = lint_tree(&tree)?;
    if !clean.is_empty() {
        return Err(format!("restored copy fails lints: {:?}", clean[0]));
    }
    println!("self-test: restored copy model-check run (must be green again)");
    if !harness_passes(&tree, &shared_target, &both)? {
        return Err("restored copy fails the model-check harnesses".into());
    }
    Ok(())
}

/// Runs the `aiac-check` harness tests in `tree` under `--cfg aiac_check`,
/// returning whether they passed. Build artifacts are shared across
/// mutations via a dedicated target dir, so only the mutated crate rebuilds.
fn harness_passes(tree: &Path, shared_target: &Path, args: &[&str]) -> Result<bool, String> {
    let out = Command::new("cargo")
        .arg("test")
        .args(["-p", "aiac-check", "-q"])
        .args(args)
        .current_dir(tree)
        .env("RUSTFLAGS", "--cfg aiac_check")
        .env("CARGO_TARGET_DIR", shared_target)
        .output()
        .map_err(|e| format!("spawning cargo: {e}"))?;
    if !out.status.success() {
        let tail: String = String::from_utf8_lossy(&out.stderr)
            .lines()
            .rev()
            .take(4)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
            .join("\n  | ");
        println!("  harness exit: {} \n  | {tail}", out.status);
    }
    Ok(out.status.success())
}

/// Recursively copies the repo, skipping build artifacts and VCS state.
fn copy_tree(from: &Path, to: &Path) -> Result<(), String> {
    fs::create_dir_all(to).map_err(|e| e.to_string())?;
    let entries = fs::read_dir(from).map_err(|e| format!("{}: {e}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        if name == "target" || name == ".git" {
            continue;
        }
        let src = entry.path();
        let dst = to.join(&name);
        let ty = entry.file_type().map_err(|e| e.to_string())?;
        if ty.is_dir() {
            copy_tree(&src, &dst)?;
        } else if ty.is_file() {
            fs::copy(&src, &dst).map_err(|e| format!("{}: {e}", src.display()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings_but_not_code() {
        let src = r#"let x = "unsafe in a string"; // unsafe in a comment
/* unsafe in /* a nested */ block */ let y = 'u'; unsafe { op() }"#;
        let masked = mask_code(src);
        let sites: Vec<_> = masked
            .lines()
            .flat_map(|l| token_sites(l, "unsafe"))
            .collect();
        assert_eq!(sites.len(), 1, "only the code token survives: {masked}");
        assert!(masked.contains("let x ="));
        assert!(masked.contains("let y ="));
    }

    #[test]
    fn token_sites_are_identifier_aware() {
        assert_eq!(token_sites("unsafe_code and unsafe", "unsafe"), vec![16]);
        assert_eq!(token_sites("Ordering::SeqCst", "Ordering"), vec![0]);
        assert!(token_sites("MyOrdering::SeqCst", "Ordering").is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"Ordering::Relaxed\"#; g(r); }";
        let masked = mask_code(src);
        assert!(!masked.contains("Ordering"), "{masked}");
        assert!(masked.contains("fn f<'a>"));
    }

    #[test]
    fn the_repo_itself_is_clean() {
        let root = workspace_root().expect("workspace root");
        let violations = lint_tree(&root).expect("lint run");
        assert!(
            violations.is_empty(),
            "repo lint violations: {violations:#?}"
        );
    }
}
