//! Quickstart: solve a banded sparse linear system with the AIAC runtime.
//!
//! This example builds the paper's first benchmark problem at a small size,
//! solves it three ways — sequentially, with synchronous threads (SISC) and
//! with asynchronous threads (AIAC) — and checks that all three agree with
//! the known exact solution.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use aiac::core::config::RunConfig;
use aiac::core::runtime::sequential::SequentialRuntime;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    // A 4 000-unknown banded system with 30 scattered sub-diagonals split
    // over 8 blocks (one worker thread per block).
    let mut params = SparseLinearParams::paper_scaled(4_000, 8);
    params.cost_scale = 1.0; // we run for real, no need for the simulator's cost model
    let problem = SparseLinearProblem::new(params);
    println!(
        "problem: {} unknowns, {} non-zeros, {} blocks",
        problem.matrix().nrows(),
        problem.matrix().nnz(),
        problem.partition().parts()
    );

    // 1. Sequential reference (plain Jacobi sweeps).
    let sequential = SequentialRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
    println!(
        "sequential : {:>6} iterations, error vs exact = {:.2e}, {:.3} s",
        sequential.iterations[0],
        problem.error_of(&sequential.solution),
        sequential.elapsed_secs
    );

    // 2. Synchronous threaded run (SISC): same iterates, spread over threads.
    let sync = ThreadedRuntime::new().run(&problem, &RunConfig::synchronous(1e-10));
    println!(
        "SISC threads: {:>6} iterations, error vs exact = {:.2e}, {:.3} s",
        sync.iterations[0],
        problem.error_of(&sync.solution),
        sync.elapsed_secs
    );

    // 3. Asynchronous threaded run (AIAC): every worker iterates at its own
    //    pace on whatever data has arrived.
    let config = RunConfig::asynchronous(1e-10).with_streak(5);
    let async_run = ThreadedRuntime::new().run(&problem, &config);
    println!(
        "AIAC threads: iterations per block = {:?}",
        async_run.iterations
    );
    println!(
        "AIAC threads: error vs exact = {:.2e}, {} data messages, {:.3} s",
        problem.error_of(&async_run.solution),
        async_run.data_messages,
        async_run.elapsed_secs
    );

    assert!(problem.error_of(&sequential.solution) < 1e-7);
    assert!(problem.error_of(&sync.solution) < 1e-7);
    assert!(problem.error_of(&async_run.solution) < 1e-5);
    println!("all three runs agree with the exact solution");
}
