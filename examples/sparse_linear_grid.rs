//! Reproduce the paper's Table 2 scenario on a simulated grid.
//!
//! The sparse linear problem is solved on a simulated three-site grid
//! connected by 10 Mb Ethernet, once with the synchronous MPI baseline and
//! once with each of the three asynchronous environments (PM2,
//! MPICH/Madeleine, OmniORB 4). Execution times are *virtual* seconds
//! produced by the discrete-event simulator, so the example runs in a few
//! seconds of wall-clock time regardless of the simulated platform.
//!
//! Run with:
//! ```text
//! cargo run --release --example sparse_linear_grid
//! ```

use aiac::core::config::RunConfig;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    let blocks = 12;
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(3_000, blocks));
    let topology = GridTopology::ethernet_3_sites(blocks);
    println!(
        "platform: {} ({} hosts over {} sites)",
        topology.name(),
        topology.num_hosts(),
        topology.num_sites()
    );

    let mut sync_time = None;
    for env in EnvKind::ALL {
        let config = if env == EnvKind::MpiSync {
            RunConfig::synchronous(1e-7)
        } else {
            RunConfig::asynchronous(1e-7).with_streak(3)
        };
        let runtime = SimulatedRuntime::new(topology.clone(), env, ProblemKind::SparseLinear);
        let outcome = runtime.run(&problem, &config);
        let report = outcome.report;
        let ratio = sync_time
            .map(|t: f64| t / report.elapsed_secs)
            .unwrap_or(1.0);
        if env == EnvKind::MpiSync {
            sync_time = Some(report.elapsed_secs);
        }
        println!(
            "{:<18} {:>9.1} virtual s   ratio {:>5.2}   error {:.1e}   {} data msgs, {:.1} MB",
            env.label(),
            report.elapsed_secs,
            ratio,
            problem.error_of(&report.solution),
            report.data_messages,
            report.data_bytes as f64 / 1e6
        );
    }
    println!("\n(the asynchronous versions should all beat the synchronous baseline)");
}
