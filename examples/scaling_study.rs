//! Mini scaling study in the spirit of Figure 3: how the synchronous and
//! asynchronous versions behave as processors are added on the simulated
//! local heterogeneous cluster (Duron 800 / P4 1.7 / P4 2.4 interleaved on
//! 100 Mb Ethernet).
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study
//! ```

use aiac::core::config::RunConfig;
use aiac::core::runtime::simulated::SimulatedRuntime;
use aiac::envs::env::EnvKind;
use aiac::envs::threads::ProblemKind;
use aiac::netsim::topology::GridTopology;
use aiac::solvers::chemical::{ChemicalParams, ChemicalProblem};

fn main() {
    println!("chemical problem on the local heterogeneous cluster (virtual seconds)");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>8}",
        "processors", "sync MPI", "async PM2", "ratio"
    );
    for &n in &[4usize, 8, 12, 16, 24] {
        let mut params = ChemicalParams::paper_scaled(48, 48, n);
        params.t_end = 540.0; // three implicit Euler steps
        let problem = ChemicalProblem::new(params.clone());
        let topology = GridTopology::local_hetero_cluster(n);

        let sync_runtime = SimulatedRuntime::new(
            topology.clone(),
            EnvKind::MpiSync,
            ProblemKind::NonLinearChemical,
        );
        let sync_cfg = RunConfig::synchronous(params.epsilon);
        let sync = problem.solve_with(|kernel, _| sync_runtime.run(kernel, &sync_cfg).report);

        let async_runtime = SimulatedRuntime::new(
            topology.clone(),
            EnvKind::Pm2,
            ProblemKind::NonLinearChemical,
        );
        let async_cfg = RunConfig::asynchronous(params.epsilon).with_streak(3);
        let asynchronous =
            problem.solve_with(|kernel, _| async_runtime.run(kernel, &async_cfg).report);

        println!(
            "{:>10}  {:>12.1}  {:>12.1}  {:>8.2}",
            n,
            sync.total_elapsed_secs,
            asynchronous.total_elapsed_secs,
            sync.total_elapsed_secs / asynchronous.total_elapsed_secs
        );
    }
    println!("\n(adding processors helps until the per-processor strip becomes too thin)");
}
