//! Integrate the two-species advection–diffusion problem (the paper's
//! non-linear benchmark) with the threaded AIAC runtime.
//!
//! The domain is split into horizontal strips, one worker thread per strip.
//! Inside every implicit-Euler time step the strips run multi-splitting
//! Newton iterations asynchronously; a barrier separates time steps. The
//! final concentrations are compared against a single-block sequential
//! reference.
//!
//! Run with:
//! ```text
//! cargo run --release --example chemical_kinetics
//! ```

use aiac::core::config::RunConfig;
use aiac::core::runtime::threaded::ThreadedRuntime;
use aiac::solvers::chemical::{ChemicalParams, ChemicalProblem};
use aiac::solvers::verify;

fn main() {
    // 40 x 40 grid, 4 strips, 6 implicit Euler steps of 180 s.
    let mut params = ChemicalParams::paper_scaled(40, 40, 4);
    params.t_end = 1_080.0;
    let problem = ChemicalProblem::new(params.clone());
    println!(
        "grid {}x{}, {} strips, {} time steps of {} s",
        params.nx,
        params.nz,
        params.blocks,
        problem.num_steps(),
        params.dt
    );

    // Asynchronous threaded integration.
    let config = RunConfig::asynchronous(1e-9).with_streak(4);
    let runtime = ThreadedRuntime::new();
    let solution = problem.solve_with(|kernel, step| {
        let report = runtime.run(kernel, &config);
        println!(
            "  step {:>2}: {:>5.1} mean inner iterations, {:>6} data messages, converged: {}",
            step + 1,
            report.mean_iterations(),
            report.data_messages,
            report.converged
        );
        report
    });
    println!(
        "asynchronous integration: {:.3} s wall-clock, {} messages in total",
        solution.total_elapsed_secs, solution.total_data_messages
    );

    // Sequential single-strip reference.
    let mut reference_params = params;
    reference_params.blocks = 1;
    let reference_problem = ChemicalProblem::new(reference_params);
    let reference = verify::chemical_reference(&reference_problem, 1e-9);

    let worst = verify::max_relative_difference(&solution.final_state, &reference.final_state, 1.0);
    println!("max relative difference vs sequential reference: {worst:.2e}");
    assert!(
        worst < 1e-4,
        "asynchronous result drifted from the reference"
    );

    // A few sample concentrations at the end of the interval.
    let g = problem.geometry();
    for &(ix, iz) in &[(10usize, 10usize), (20, 20), (30, 35)] {
        let c1 = solution.final_state[g.index(0, ix, iz)];
        let c2 = solution.final_state[g.index(1, ix, iz)];
        println!("c1({ix:>2},{iz:>2}) = {c1:.3e}   c2({ix:>2},{iz:>2}) = {c2:.3e}");
    }
}
