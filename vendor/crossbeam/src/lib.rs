//! Offline shim for `crossbeam`.
//!
//! Provides the two APIs the runtime uses — [`channel::unbounded`] MPMC
//! channels and [`scope`]d threads — implemented on top of `std` primitives
//! (`Mutex` + `Condvar` queues, `std::thread::scope`). Semantics match the
//! real crate where the workspace depends on them: cloneable senders and
//! receivers, disconnect detection on both ends, and `scope` returning `Err`
//! instead of propagating a child-thread panic.

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to [`scope`] closures; spawned closures also
/// receive one so they can spawn further siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that is joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a [`Scope`], joining every spawned thread before returning.
/// Returns `Err` with the panic payload if any thread (or `f`) panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn scoped_threads_communicate_over_channels() {
        let (tx, rx) = unbounded::<usize>();
        let total = super::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            rx.iter().sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 6);
    }

    #[test]
    fn scope_reports_child_panics_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("child panic"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
