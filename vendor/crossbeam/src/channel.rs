//! Unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// Creates an unbounded channel; both halves are cloneable.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders still exist.
    Empty,
    /// Nothing queued and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of the channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of the channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).unwrap();
        }
    }

    /// Pops a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(value) => Ok(value),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}
