//! Offline shim for `serde_derive`.
//!
//! This workspace is built without network access, so the real `serde`
//! derive macros (and their `syn`/`quote` dependency tree) are unavailable.
//! This crate re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the subset of type shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (including newtypes),
//! * unit structs,
//! * enums with unit, tuple and struct variants,
//! * no generic parameters and no `#[serde(...)]` attributes.
//!
//! The generated code targets the vendored `serde` facade crate: the
//! `Serialize` derive produces a `serde::Value` tree (rendered to JSON by
//! the vendored `serde_json`), and the `Deserialize` derive emits the exact
//! mirror decoder — structs from maps in field order (absent fields go
//! through `Deserialize::from_missing`, so `Option` fields tolerate
//! omission), newtypes transparently, tuple structs from sequences, unit
//! enum variants from their name string and data variants from the
//! single-entry map the serializer writes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the type a derive is applied to.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — number of fields.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = serialize_body(&name, &shape);
    let imp = format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n{body}\t}}\n}}\n"
    );
    imp.parse()
        .expect("serde_derive shim generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = deserialize_body(&name, &shape);
    let imp = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\t}}\n}}\n"
    );
    imp.parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Generates the `field: ...` decoding expression for one named field of
/// `__map`, routing absent keys through `from_missing` (Option support).
fn named_field_expr(ty: &str, field: &str) -> String {
    format!(
        "{field}: match ::serde::Value::lookup(__map, \"{field}\") {{\n\
         \t\t\t\t::std::option::Option::Some(__f) => \
         ::serde::Deserialize::from_value(__f)\
         .map_err(|e| e.in_field(\"{ty}\", \"{field}\"))?,\n\
         \t\t\t\t::std::option::Option::None => \
         ::serde::Deserialize::from_missing()\
         .map_err(|e| e.in_field(\"{ty}\", \"{field}\"))?,\n\
         \t\t\t}},\n"
    )
}

fn deserialize_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct => format!(
            "\t\tmatch __v {{\n\
             \t\t\t::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             \t\t\t_ => ::std::result::Result::Err(\
             ::serde::DeError::expected(\"null for unit struct `{name}`\", __v)),\n\
             \t\t}}\n"
        ),
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "\t\tlet __map = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"a map for struct `{name}`\", __v))?;\n\
                 \t\t::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str("\t\t\t");
                s.push_str(&named_field_expr(name, f));
            }
            s.push_str("\t\t})\n");
            s
        }
        Shape::TupleStruct(1) => format!(
            "\t\t::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)\
             .map_err(|e| e.in_field(\"{name}\", \"0\"))?))\n"
        ),
        Shape::TupleStruct(n) => {
            let mut s = format!(
                "\t\tlet __seq = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"a sequence for struct `{name}`\", __v))?;\n\
                 \t\tif __seq.len() != {n} {{\n\
                 \t\t\treturn ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"struct `{name}` needs {n} elements, found {{}}\", \
                 __seq.len())));\n\
                 \t\t}}\n\
                 \t\t::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "\t\t\t::serde::Deserialize::from_value(&__seq[{i}])\
                     .map_err(|e| e.in_field(\"{name}\", \"{i}\"))?,\n"
                ));
            }
            s.push_str("\t\t))\n");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::new();
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            if !unit.is_empty() {
                s.push_str("\t\tif let ::serde::Value::Str(__s) = __v {\n");
                s.push_str("\t\t\treturn match __s.as_str() {\n");
                for v in &unit {
                    let vn = &v.name;
                    s.push_str(&format!(
                        "\t\t\t\t\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
                s.push_str(&format!(
                    "\t\t\t\t__other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown variant `{{__other}}` of enum `{name}`\"))),\n\
                     \t\t\t}};\n\t\t}}\n"
                ));
            }
            if data.is_empty() {
                s.push_str(&format!(
                    "\t\t::std::result::Result::Err(::serde::DeError::expected(\
                     \"a variant name of enum `{name}`\", __v))\n"
                ));
                return s;
            }
            s.push_str(&format!(
                "\t\tlet __pairs = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"a variant of enum `{name}`\", __v))?;\n\
                 \t\tif __pairs.len() != 1 {{\n\
                 \t\t\treturn ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected a single-entry variant map for enum `{name}`\"));\n\
                 \t\t}}\n\
                 \t\tlet (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1);\n\
                 \t\tmatch __tag.as_str() {{\n"
            ));
            for v in &data {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unreachable!("unit variants handled above"),
                    VariantKind::Tuple(1) => s.push_str(&format!(
                        "\t\t\t\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)\
                         .map_err(|e| e.in_field(\"{name}::{vn}\", \"0\"))?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "\t\t\t\"{vn}\" => {{\n\
                             \t\t\t\tlet __seq = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\
                             \"a sequence for variant `{name}::{vn}`\", __inner))?;\n\
                             \t\t\t\tif __seq.len() != {n} {{\n\
                             \t\t\t\t\treturn ::std::result::Result::Err(\
                             ::serde::DeError::new(::std::format!(\
                             \"variant `{name}::{vn}` needs {n} elements, found {{}}\", \
                             __seq.len())));\n\
                             \t\t\t\t}}\n\
                             \t\t\t\t::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "\t\t\t\t\t::serde::Deserialize::from_value(&__seq[{i}])\
                                 .map_err(|e| e.in_field(\"{name}::{vn}\", \"{i}\"))?,\n"
                            ));
                        }
                        arm.push_str("\t\t\t\t))\n\t\t\t},\n");
                        s.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "\t\t\t\"{vn}\" => {{\n\
                             \t\t\t\tlet __map = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\
                             \"a map for variant `{name}::{vn}`\", __inner))?;\n\
                             \t\t\t\t::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str("\t\t\t\t\t");
                            arm.push_str(&named_field_expr(&format!("{name}::{vn}"), f));
                        }
                        arm.push_str("\t\t\t\t})\n\t\t\t},\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push_str(&format!(
                "\t\t\t__other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}` of enum `{name}`\"))),\n\
                 \t\t}}\n"
            ));
            s
        }
    }
}

fn serialize_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct => "\t\t::serde::Value::Null\n".to_string(),
        Shape::NamedStruct(fields) => {
            let mut s = String::from("\t\t::serde::Value::Map(::std::vec![\n");
            for f in fields {
                s.push_str(&format!(
                    "\t\t\t(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            s.push_str("\t\t])\n");
            s
        }
        Shape::TupleStruct(1) => "\t\t::serde::Serialize::to_value(&self.0)\n".to_string(),
        Shape::TupleStruct(n) => {
            let mut s = String::from("\t\t::serde::Value::Seq(::std::vec![\n");
            for i in 0..*n {
                s.push_str(&format!("\t\t\t::serde::Serialize::to_value(&self.{i}),\n"));
            }
            s.push_str("\t\t])\n");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("\t\tmatch self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "\t\t\t{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "\t\t\t{name}::{vn}({pat}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "\t\t\t{name}::{vn} {{ {pat} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            s.push_str("\t\t}\n");
            s
        }
    }
}

/// Parses the derive input down to the type name and its field layout.
fn parse(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(other) => panic!("serde_derive shim: unexpected token after struct name: {other}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive shim: expected enum body for `{name}`"),
        },
        other => panic!("serde_derive shim: unions are not supported (`{other}`)"),
    };
    (name, shape)
}

/// Advances past leading `#[...]` attributes and a `pub` / `pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `a: T, b: U, ...` (named struct or struct-variant bodies).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{fname}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(fname);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips one type expression, stopping at a top-level `,` (tracks `<` depth).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts comma-separated fields of a tuple struct / tuple variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Parses `Unit, Tuple(T), Struct { f: T }, ...` enum bodies.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`) up to the comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // consume the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}
