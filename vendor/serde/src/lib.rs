//! Offline shim for `serde`.
//!
//! The workspace is built without network access, so this crate stands in
//! for the real `serde`. It keeps the two names the sources import —
//! [`Serialize`] and [`Deserialize`], each usable both as a trait and as a
//! derive macro — but the data model is deliberately tiny: a [`Serialize`]
//! impl lowers the value to a [`Value`] tree, which the vendored
//! `serde_json` renders as JSON text, and a [`Deserialize`] impl rebuilds
//! the value from such a tree (parsed back by `serde_json::from_str`).
//!
//! The decoding half exists for the benchmark harness, which round-trips
//! its `BenchRecord` schema through committed JSON baselines. It mirrors
//! the encoding conventions exactly: structs are maps in field order,
//! newtypes are transparent, unit enum variants are strings and data
//! variants are single-entry maps. Extend this facade rather than reaching
//! for the real serde (no network in CI).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned, loosely typed serialization tree (a small subset of
/// `serde_json::Value`, shared by the two vendored crates).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered key/value pairs (field declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's kind, used in decode errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "a number",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }

    /// The numeric value as an `f64`, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks a key up in a slice of map pairs (first match wins, mirroring
    /// the encoder, which writes each field exactly once).
    pub fn lookup<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Why a [`Value`] tree could not be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form decode error.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" with the found value's kind filled in.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Wraps the error with the struct field (or variant field) it occurred
    /// in, so nested failures name their path.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        DeError(format!("{ty}.{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decodes the value, mirroring what [`Serialize::to_value`] produced.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the map. `Option<T>`
    /// decodes to `None`; everything else reports the missing field.
    fn from_missing() -> Result<Self, DeError> {
        Err(DeError::new("missing field"))
    }
}

macro_rules! ser_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8 i16 i32 i64 isize);

macro_rules! ser_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<[T]> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps with string keys render as JSON objects; any other key type renders
/// as a sequence of `[key, value]` pairs (the real serde_json rejects such
/// maps at runtime — degrading to pairs is friendlier for report output).
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls, mirroring the Serialize impls above one for one.
// ---------------------------------------------------------------------

macro_rules! de_signed {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("a signed integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} is out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_signed!(i8 i16 i32 i64 isize);

macro_rules! de_unsigned {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} is out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_unsigned!(u8 u16 u32 u64 usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // The JSON encoder writes non-finite floats as null; decoding
            // null back to NaN is the lossy inverse of that convention.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::expected("a number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a bool", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!(
                "expected a one-character string, found {s:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }

    fn from_missing() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::expected("a sequence", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| DeError::expected("a sequence", v))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected a {}-element sequence, found {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

/// Decodes map entries from either encoding `map_to_value` produces: a JSON
/// object (string keys) or a sequence of `[key, value]` pairs.
fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Map(pairs) => pairs
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect(),
        Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
        _ => Err(DeError::expected("a map or a sequence of pairs", v)),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
