//! Offline shim for `serde`.
//!
//! The workspace is built without network access, so this crate stands in
//! for the real `serde`. It keeps the two names the sources import —
//! [`Serialize`] and [`Deserialize`], each usable both as a trait and as a
//! derive macro — but the serialization model is deliberately tiny: a
//! [`Serialize`] impl lowers the value to a [`Value`] tree, which the
//! vendored `serde_json` renders as JSON text.
//!
//! [`Deserialize`] is a marker trait only: nothing in the workspace parses
//! JSON back into Rust values yet. When that need appears, extend this
//! facade rather than reaching for the real serde (no network in CI).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned, loosely typed serialization tree (a small subset of
/// `serde_json::Value`, shared by the two vendored crates).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered key/value pairs (field declaration order).
    Map(Vec<(String, Value)>),
}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`. See the module docs.
pub trait Deserialize: Sized {}

macro_rules! ser_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8 i16 i32 i64 isize);

macro_rules! ser_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps with string keys render as JSON objects; any other key type renders
/// as a sequence of `[key, value]` pairs (the real serde_json rejects such
/// maps at runtime — degrading to pairs is friendlier for report output).
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}
