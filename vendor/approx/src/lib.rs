//! Offline shim for `approx`: the two assertion macros the tests use,
//! implemented directly over `f64` comparisons.

/// Asserts `|a - b| <= epsilon` (default `1e-12`).
#[macro_export]
macro_rules! assert_abs_diff_eq {
    ($a:expr, $b:expr $(,)?) => {
        $crate::assert_abs_diff_eq!($a, $b, epsilon = 1e-12)
    };
    ($a:expr, $b:expr, epsilon = $eps:expr $(,)?) => {{
        let (left, right, eps): (f64, f64, f64) = ($a, $b, $eps);
        assert!(
            (left - right).abs() <= eps,
            "assert_abs_diff_eq failed: {} vs {} (eps {})",
            left,
            right,
            eps
        );
    }};
}

/// Asserts `a` and `b` agree to within `epsilon` absolutely or
/// `max_relative` relatively (defaults `1e-12` / `1e-9`).
#[macro_export]
macro_rules! assert_relative_eq {
    ($a:expr, $b:expr $(,)?) => {
        $crate::assert_relative_eq!($a, $b, epsilon = 1e-12, max_relative = 1e-9)
    };
    ($a:expr, $b:expr, epsilon = $eps:expr $(,)?) => {
        $crate::assert_relative_eq!($a, $b, epsilon = $eps, max_relative = 1e-9)
    };
    ($a:expr, $b:expr, max_relative = $rel:expr $(,)?) => {
        $crate::assert_relative_eq!($a, $b, epsilon = 1e-12, max_relative = $rel)
    };
    ($a:expr, $b:expr, epsilon = $eps:expr, max_relative = $rel:expr $(,)?) => {{
        let (left, right): (f64, f64) = ($a, $b);
        let diff = (left - right).abs();
        let largest = left.abs().max(right.abs());
        assert!(
            diff <= $eps || diff <= largest * $rel,
            "assert_relative_eq failed: {} vs {} (diff {}, eps {}, max_relative {})",
            left,
            right,
            diff,
            $eps,
            $rel
        );
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn absolute_and_relative_forms_accept_close_values() {
        assert_abs_diff_eq!(1.0, 1.0 + 1e-13);
        assert_relative_eq!(1e9, 1e9 + 1.0, max_relative = 1e-8);
        assert_relative_eq!(0.0, 1e-13);
    }

    #[test]
    #[should_panic(expected = "assert_relative_eq failed")]
    fn distant_values_panic() {
        assert_relative_eq!(1.0, 2.0);
    }
}
