//! Offline shim for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree as JSON text (`to_string` /
//! `to_string_pretty`) and parses JSON text back into a `Value` tree
//! (`from_str`), from which any `serde::Deserialize` type rebuilds itself.
//! The parser exists for the benchmark harness's committed baselines; it
//! accepts standard JSON (objects, arrays, strings with escapes, numbers,
//! `true`/`false`/`null`) and nothing more exotic.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Parses JSON text and decodes it into `T` (any [`Deserialize`] type;
/// use `serde::Value` as `T` to get the raw tree).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.consume_keyword("null").map(|()| Value::Null),
            Some(b't') => self.consume_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.consume_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.consume_keyword("\\u")
                                    .map_err(|_| Error("lone high surrogate".to_string()))?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error(format!(
                                        "high surrogate followed by \\u{lo:04x}, \
                                         not a low surrogate"
                                    )));
                                }
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".to_string()))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error("invalid \\u escape".to_string()))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error("invalid escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits (the payload of a `\u` escape).
    /// Called with `pos` on the first digit; leaves `pos` past the last.
    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let n =
            u32::from_str_radix(digits, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            // Integers beyond 64 bits fall through to the f64 path below.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

/// Encodes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_items(
            out,
            items.len(),
            indent,
            depth,
            |out, i, ind, d| {
                write_value(out, &items[i], ind, d);
            },
            '[',
            ']',
        ),
        Value::Map(pairs) => write_items(
            out,
            pairs.len(),
            indent,
            depth,
            |out, i, ind, d| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, &pairs[i].1, ind, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_items(
    out: &mut String,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<&str>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, i, indent, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// JSON has no NaN/infinity; like the real crate's lossy modes we fall back
/// to `null` rather than erroring, since bench outputs may contain them.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_of_scalars_and_containers() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn pretty_encoding_indents_nested_structures() {
        let v = vec![vec![1u64], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parses_scalars() {
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(
            from_str::<String>("\"a\\n\\\"b\\u00e9\"").unwrap(),
            "a\n\"bé"
        );
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn parses_containers() {
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Vec<u64>>("[]").unwrap(), Vec::<u64>::new());
        let v: Value = from_str("{\"a\": [1, {\"b\": null}]}").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".to_string(),
                Value::Seq(vec![
                    Value::U64(1),
                    Value::Map(vec![("b".to_string(), Value::Null)]),
                ])
            )])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn encoded_values_parse_back_identically() {
        let original = Value::Map(vec![
            ("s".to_string(), Value::Str("x\ty".to_string())),
            ("n".to_string(), Value::F64(2.5)),
            ("u".to_string(), Value::U64(9)),
            ("i".to_string(), Value::I64(-9)),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        for text in [
            to_string(&original).unwrap(),
            to_string_pretty(&original).unwrap(),
        ] {
            let reparsed: Value = from_str(&text).unwrap();
            assert_eq!(reparsed, original);
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_characters() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn malformed_surrogates_are_rejected() {
        // High surrogate followed by a non-surrogate escape.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        // High surrogate followed by another high surrogate.
        assert!(from_str::<String>("\"\\ud800\\ud800\"").is_err());
        // Lone surrogates in either half.
        assert!(from_str::<String>("\"\\ud800\"").is_err());
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }
}
