//! Offline shim for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree as JSON text. Only the encoding
//! half is implemented (`to_string` / `to_string_pretty`) because nothing in
//! the workspace parses JSON back in; extend here if that changes.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the shim encoder is infallible in practice, but the
/// signature mirrors the real crate so call sites stay source-compatible).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Encodes `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_items(
            out,
            items.len(),
            indent,
            depth,
            |out, i, ind, d| {
                write_value(out, &items[i], ind, d);
            },
            '[',
            ']',
        ),
        Value::Map(pairs) => write_items(
            out,
            pairs.len(),
            indent,
            depth,
            |out, i, ind, d| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, &pairs[i].1, ind, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_items(
    out: &mut String,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<&str>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, i, indent, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// JSON has no NaN/infinity; like the real crate's lossy modes we fall back
/// to `null` rather than erroring, since bench outputs may contain them.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding_of_scalars_and_containers() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn pretty_encoding_indents_nested_structures() {
        let v = vec![vec![1u64], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
