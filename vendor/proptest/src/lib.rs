//! Offline shim for `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), numeric range strategies, tuple
//! strategies, [`collection::vec`] and [`bool::ANY`], plus the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with its seed and inputs via
//!   the standard assert messages, but is not minimised;
//! * **deterministic sampling** — each test function derives its RNG seed
//!   from its own name (FNV-1a hash), so runs are reproducible and CI is
//!   stable;
//! * assertions panic immediately instead of returning `TestCaseError`.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG used to drive strategies inside [`proptest!`] bodies.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Seeds the generator from the test function's name so every test gets
    /// its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// How [`proptest!`] runs each property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 32 keeps the heavier simulation-backed
        // properties fast while still exercising a spread of inputs.
        ProptestConfig { cases: 32 }
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type (no shrinking in the shim).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize f32 f64);

    macro_rules! tuple_strategy {
        ($(($($t:ident $n:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// Strategy yielding a constant value (`Just` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    /// Samples vectors whose elements come from `element` and whose length
    /// lies in `len` (half-open, like the real crate's size ranges).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// Strategy for uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$attr:meta])*
         fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Shim `prop_assert!`: panics on failure (no `TestCaseError` channel).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Shim `prop_assert_eq!`: panics on failure (no `TestCaseError` channel).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their range bounds.
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            n in 1usize..10,
            x in -2.0f64..2.0,
            pairs in crate::collection::vec((0usize..4, crate::bool::ANY), 1..12),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(!pairs.is_empty() && pairs.len() < 12);
            for (block, _flag) in pairs {
                prop_assert!(block < 4);
            }
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore;
        let a = crate::TestRng::deterministic("alpha").next_u64();
        let b = crate::TestRng::deterministic("alpha").next_u64();
        let c = crate::TestRng::deterministic("beta").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
