//! Offline shim for `rand_chacha`: a genuine ChaCha8 block cipher core
//! driving the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha implementation (8 rounds), but
//! `seed_from_u64` uses its own SplitMix64 key expansion, so streams are
//! *not* bit-compatible with the upstream crate — they only need to be
//! deterministic and well mixed, which is all the reproduction depends on.

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce laid out as the 16-word ChaCha state.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion: fills the 8 key words deterministically
        // with good avalanche behaviour even for small consecutive seeds.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (words 12..14) starts at zero; nonce (14..16) stays zero.
        Self {
            state,
            block: [0u32; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "consecutive seeds must give unrelated streams");
    }

    #[test]
    fn float_sampling_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(12345);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
