//! Offline shim for `rand`.
//!
//! Supplies the trait surface the workspace uses — [`Rng::gen_range`] over
//! half-open ranges and [`SeedableRng::seed_from_u64`] — with the generator
//! itself living in the vendored `rand_chacha`. Integer sampling uses a
//! simple modulo reduction and floats use the 53-bit mantissa trick; both
//! are deterministic, which is what the reproduction actually relies on.

use std::ops::Range;

/// Core source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension trait with the sampling helpers call sites use.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be seeded from a single `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        };
        wide.sample_from(rng) as f32
    }
}

macro_rules! sample_uint_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
sample_uint_range!(u8 u16 u32 u64 usize);

macro_rules! sample_int_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
sample_int_range!(i8 i16 i32 i64 isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
