//! Offline shim for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, `Bencher::iter`) with a simple wall-clock harness: per
//! benchmark it warms up, auto-calibrates an iteration count so one sample
//! takes ~1 ms, times `sample_size` samples and prints min/mean/max ns per
//! iteration. No statistics, plots or history — just numbers on stdout.
//!
//! Running with `--test` (what `cargo test` passes to `harness = false`
//! bench targets) or setting `CRITERION_SHIM_QUICK=1` switches to a single
//! iteration per benchmark so CI smoke runs stay fast.

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to every `criterion_group!` target function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SHIM_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        run_one(&id.into().label, 10, quick, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.criterion.quick, &mut f);
        self
    }

    /// Benchmarks `f` with an explicit input value (criterion parity; the
    /// input is simply passed through to the closure).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.criterion.quick, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (exists for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`, like the real crate.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations to execute per sample (calibrated by the harness).
    iters: u64,
    /// Wall-clock time of the last `iter` call, used by the harness.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, quick: bool, f: &mut F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if quick {
        f(&mut bencher);
        println!("  {label}: ok (quick mode, 1 iteration)");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample costs
    // at least ~1 ms, so short routines are not dominated by timer noise.
    loop {
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(1) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 4;
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "  {label}: [{} {} {}] ({} samples x {} iters)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        samples,
        bencher.iters,
    );
}

fn format_ns(ns: f64) -> String {
    let mut out = String::new();
    if ns < 1_000.0 {
        let _ = write!(out, "{ns:.1} ns");
    } else if ns < 1_000_000.0 {
        let _ = write!(out, "{:.2} us", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(out, "{:.2} ms", ns / 1_000_000.0);
    } else {
        let _ = write!(out, "{:.3} s", ns / 1_000_000_000.0);
    }
    out
}

/// Declares a group of benchmark functions, mirroring the criterion macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring the criterion macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
